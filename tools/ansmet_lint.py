#!/usr/bin/env python3
"""ansmet_lint: project-specific determinism and style linter.

ANSMET's figures depend on bitwise-deterministic replay, and its
locking contracts are enforced at compile time through the annotated
wrappers in src/common/sync.h. This linter statically proves the
conventions that neither the compiler nor clang-tidy checks:

  R1  ansmet-determinism   No nondeterminism source in the simulator-
                           deterministic directories (src/sim, src/ndp,
                           src/dram, src/et, src/anns): std::rand and
                           friends, wall-clock time, and std random
                           engines are banned; common::Prng is the only
                           sanctioned randomness.
  R2  ansmet-rawnew        No raw `new` / `delete` in src/ (smart
                           pointers and containers own everything);
                           `= delete`d functions and placement forms
                           are exempt.
  R3  ansmet-nolint        Every NOLINT / NOLINTNEXTLINE / NOLINTBEGIN
                           must carry a written justification after the
                           check list (": why" — keeps suppressions
                           honest).
  R4  ansmet-rawsync       No direct std::mutex / std::shared_mutex /
                           std::condition_variable (or std lock RAII
                           over them) outside src/common/sync.h — the
                           annotated wrappers are mandatory so Clang's
                           thread-safety analysis sees every lock.
                           Likewise no direct std::thread / std::jthread
                           / std::async outside src/common/runtime/ and
                           the src/common/thread_pool facade — threads
                           are spawned only by the task runtime so
                           worker count, affinity, and shutdown stay
                           centralized (std::this_thread is fine).
  R5  ansmet-eventcapture  No std::function inside the arguments of a
                           schedule()/scheduleIn() call in the
                           simulator-hot directories (src/sim, src/ndp,
                           src/dram, src/cpu, src/core, src/cache):
                           event callbacks are sim::EventQueue::Callback
                           (an InlineFunction with a compile-enforced
                           capture budget); std::function would put its
                           capture back on the heap per event.
  R6  ansmet-tickunits     No raw integer literal as the time argument
                           of schedule()/scheduleIn() or the DRAM
                           timing-legality calls (earliestAct/issueAct/
                           earliestPre/issuePre/earliestCol/issueCol/
                           catchUpRefresh) in the simulator-hot
                           directories: simulated times are sim::Tick /
                           sim::TickDelta, and a bare literal bypasses
                           the unit check the strong types exist for.
  R7  ansmet-lockorder     The static lock-acquisition graph must be
                           acyclic. Scoped acquisitions (MutexLock /
                           ReaderLock / WriterLock from common/sync.h,
                           plus ANSMET_REQUIRES preconditions) are
                           collected per function, propagated through
                           direct calls, and any cycle in the resulting
                           order graph is reported with its full path —
                           a cycle is a latent deadlock even if today's
                           schedules never interleave it.
  R8  ansmet-danglecapture A callback handed to schedule()/scheduleIn()
                           or stored in an onComplete field
                           (dram::Request, ndp::NdpTask) runs after the
                           enclosing frame is gone, so its lambda must
                           not capture by reference ([&], [&x],
                           [&x = ...]); capture by value or [this].
  R9  ansmet-detflow       No nondeterministic value may flow into
                           simulated state in the deterministic
                           directories. Two layers: any std::unordered_*
                           container mention is flagged at the
                           declaration (bucket order is the hazard), and
                           a conservative interprocedural taint pass
                           tracks values derived from unordered-
                           container iteration, pointer-to-integer
                           casts, std::hash over pointers, and thread
                           ids through assignments, returns, and
                           same-file calls into sinks: event-scheduling
                           arguments, simulator state writes (members
                           named `*_`), and obs-recorded values.
  R10 ansmet-checkpure     No side effect inside the arguments of
                           ANSMET_DCHECK* : audit-off builds skip the
                           whole expression (common/check.h gates it on
                           auditEnabled()), so `++`, assignments, and
                           mutating calls (pop(), erase(), next(), ...)
                           silently disappear in release runs.
  R11 ansmet-mustuse       Results that encode an outcome must be
                           checked: MpscChannel::tryPush,
                           AdmissionScheduler::tryOffer / admitNext,
                           HistogramData::quantile, and the cancelable
                           EventQueue schedule variants. Enforced twice:
                           [[nodiscard]] in the headers and this rule
                           for expression-statement discards; `(void)`
                           is the explicit acknowledgement.
  R12 ansmet-cbblock       Deferred callbacks (schedule()/scheduleIn()
                           arguments and onComplete fields) in the
                           sim-hot directories must not block: no
                           MutexLock/ReaderLock/WriterLock acquisition,
                           no .wait() parking, and no call to a
                           same-file function that (transitively,
                           file-locally) acquires a lock. Atomics and
                           seqlock reads are naturally exempt.

Suppression: a finding is waived by `// NOLINT(<rule>): reason` on the
same line or `// NOLINTNEXTLINE(<rule>): reason` on the line above,
using the rule names in the middle column (for R7, on the acquisition
or call line that contributes the unwanted edge). R3 itself validates
those comments, so a suppression can never be silent.

Engines: with the libclang Python bindings installed (python3-clang)
each file is parsed by clang itself, driven by the build tree's
compile_commands.json; the structural rules then run over clang's
token stream and a cursor-visitation pass over the AST prunes any
finding the AST disproves (wrong call resolution, a bracket that is
not a lambda). Without the bindings a built-in lexer produces the same
unified token stream and every rule — including R6/R7/R8 — runs on the
structural analysis alone, so lexical-engine findings are always a
superset of libclang-engine findings. `--engine libclang` makes
libclang mandatory and SKIPS with exit 0 when it is absent, mirroring
tools/run_tidy.sh's behavior when clang-tidy is missing.

Output: `--format text` (default) prints one line per finding;
`--format sarif` emits a SARIF 2.1.0 log (for code-scanning upload).
`--output FILE` redirects either format to a file.

Caching: per-file results (findings + lock facts) are memoized under
<repo>/.ansmet_cache/lint/, keyed by the file's content hash, the
engine, and a fingerprint of this script — so a re-run over an
unchanged tree re-reports identical findings without re-analysis, and
any edit to a file or to the linter invalidates exactly the right
entries. Cross-file passes (R7 lock order) always re-run over the
cached facts, so caching never changes the result. `--no-cache`
disables it; `--changed-only` restricts the scan to files changed vs
git HEAD (plus untracked) for fast local iteration — the lock-order
graph then only sees those files, so CI keeps the full scan.

Exit status: 0 clean (or skipped), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------

DETERMINISTIC_DIRS = ("src/sim", "src/ndp", "src/dram", "src/et",
                      "src/anns", "src/serve")

# Identifier tokens banned by R1 inside the deterministic directories.
BANNED_RANDOM = {
    "rand": "std::rand is seed-global and unordered under threading",
    "srand": "std::srand mutates global state",
    "rand_r": "use common::Prng streams instead",
    "random": "POSIX random() is seed-global",
    "drand48": "use common::Prng streams instead",
    "lrand48": "use common::Prng streams instead",
    "mrand48": "use common::Prng streams instead",
    "random_device": "std::random_device is nondeterministic by design",
    "mt19937": "std engines drift across stdlibs; use common::Prng",
    "mt19937_64": "std engines drift across stdlibs; use common::Prng",
    "minstd_rand": "std engines drift across stdlibs; use common::Prng",
    "default_random_engine": "implementation-defined; use common::Prng",
}
BANNED_CLOCK = {
    "system_clock": "wall-clock time must not feed simulated output",
    "high_resolution_clock": "wall-clock time must not feed simulated "
                             "output",
    "steady_clock": "host timing must not feed simulated output",
    "clock_gettime": "host timing must not feed simulated output",
    "gettimeofday": "host timing must not feed simulated output",
}

# R4: raw sync vocabulary banned outside the wrapper header.
BANNED_SYNC = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_timed_mutex", "condition_variable",
    "condition_variable_any", "lock_guard", "unique_lock", "shared_lock",
    "scoped_lock",
}
SYNC_EXEMPT_SUFFIX = os.path.join("src", "common", "sync.h")

# R4 (thread-spawn half): raw std::thread / std::jthread / std::async
# outside the task runtime and its ThreadPool facade. Centralizing
# thread creation is what keeps worker count, core affinity, the
# nested-inline rules, and drain-then-join shutdown coherent.
# (`std::this_thread` lexes as the single identifier `this_thread` and
# is deliberately not banned — yield/sleep_for are fine anywhere.)
BANNED_THREAD_SPAWN = {"thread", "jthread", "async"}
THREAD_EXEMPT_DIRS = ("src/common/runtime",)
THREAD_EXEMPT_FILES = (
    "src/common/thread_pool.h",
    "src/common/thread_pool.cc",
)

# R5/R6/R8: directories whose schedule()/scheduleIn() calls sit on the
# simulated hot path.
SIM_HOT_DIRS = ("src/sim", "src/ndp", "src/dram", "src/cpu", "src/core",
                "src/cache")
SCHEDULE_CALLS = ("schedule", "scheduleIn", "scheduleCancelable",
                  "scheduleInCancelable")

# R6: call name -> zero-based index of its Tick/TickDelta argument.
# The schedule() priority argument and DRAM bank-address/is_write
# arguments are deliberately NOT covered: only the time slot is
# unit-typed.
TIME_ARG_CALLS = {
    "schedule": 0,
    "scheduleIn": 0,
    "scheduleCancelable": 0,
    "scheduleInCancelable": 0,
    "catchUpRefresh": 0,
    "earliestAct": 1,
    "earliestPre": 1,
    "issueAct": 1,
    "issuePre": 1,
    "earliestCol": 2,
    "issueCol": 2,
}

# R7: the scoped-capability RAII classes from src/common/sync.h.
LOCK_CLASSES = {"MutexLock", "ReaderLock", "WriterLock"}
REQUIRES_MACROS = {"ANSMET_REQUIRES", "ANSMET_REQUIRES_SHARED"}

# R8: struct fields holding completion callbacks that outlive the
# assigning frame (dram::Request::onComplete, ndp::NdpTask::onComplete).
CALLBACK_FIELDS = {"onComplete"}

# R9: unordered containers whose iteration order is the hazard.
UNORDERED_CONTAINERS = {"unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset"}
# Iterating is the leak; find()/count()/at() lookups stay deterministic.
_ITER_METHODS = {"begin", "end", "cbegin", "cend", "rbegin", "rend"}
_NONDET_CALLS = {"get_id", "pthread_self"}
# reinterpret_cast<T>(ptr) where T is integral = address bits escaping.
_INT_CAST_TARGETS = {"uintptr_t", "intptr_t", "size_t", "ptrdiff_t",
                     "uint64_t", "uint32_t", "int64_t", "int32_t",
                     "unsigned", "long", "int", "short"}
# Methods through which a tainted element taints its container.
_GROW_METHODS = {"push_back", "emplace_back", "push_front",
                 "emplace_front", "insert", "emplace", "push",
                 "assign", "append"}
# obs recording surfaces (Counter/Gauge/Histogram/TraceWriter).
_OBS_RECORD_METHODS = {"record", "inc", "add", "set", "observe"}
# Ids never worth tainting in a range-for declaration (type furniture).
_TYPEISH_IDS = {"auto", "const", "std", "size_t", "uint8_t", "uint16_t",
                "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t",
                "int64_t", "unsigned", "signed", "int", "long", "short",
                "char", "bool", "float", "double", "pair", "tuple",
                "string", "string_view"}

# R10: ANSMET_DCHECK* arguments vanish in audit-off builds; these
# member calls mutate their receiver, so calling them there loses the
# effect silently (Prng::next() included: it advances the stream).
_DCHECK_PREFIX = "ANSMET_DCHECK"
_MUTATING_METHODS = {"pop", "tryPop", "push", "tryPush", "tryOffer",
                     "pop_back", "pop_front", "push_back", "push_front",
                     "emplace", "emplace_back", "erase", "insert",
                     "clear", "reset", "release", "consume", "advance",
                     "store", "exchange", "fetch_add", "fetch_sub",
                     "next"}

# R11: results that encode an outcome the caller cannot infer any
# other way. Enforced by [[nodiscard]] in the headers AND here (the
# linter also sees discards that a cast-to-void would hide from -W).
MUST_CHECK = {
    "tryPush": "false means the value was NOT enqueued",
    "tryOffer": "false means the arrival was dropped, not queued",
    "admitNext": "the result carries the admitted query's slot binding",
    "quantile": "the estimate is the call's only product",
    "scheduleCancelable": "a dropped handle can never be descheduled",
    "scheduleInCancelable": "a dropped handle can never be descheduled",
}
_CONSUME_KEYWORDS = {"return", "throw", "co_return", "co_yield"}
_STMT_KEYWORDS = {"else", "do"}

# R12: parking calls banned inside deferred callbacks (TaskGroup::wait
# and friends); lock RAII comes from LOCK_CLASSES above.
_BLOCKING_WAITS = {"wait", "waitAll"}

RULES = {
    "R1": "ansmet-determinism",
    "R2": "ansmet-rawnew",
    "R3": "ansmet-nolint",
    "R4": "ansmet-rawsync",
    "R5": "ansmet-eventcapture",
    "R6": "ansmet-tickunits",
    "R7": "ansmet-lockorder",
    "R8": "ansmet-danglecapture",
    "R9": "ansmet-detflow",
    "R10": "ansmet-checkpure",
    "R11": "ansmet-mustuse",
    "R12": "ansmet-cbblock",
}

NOLINT_RE = re.compile(
    r"NOLINT(NEXTLINE|BEGIN|END)?(\(([^)]*)\))?(.*)", re.DOTALL)


class Token:
    __slots__ = ("kind", "spelling", "line")

    def __init__(self, kind, spelling, line):
        self.kind = kind  # 'id', 'punct', 'comment', 'literal', 'kw'
        self.spelling = spelling
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.spelling!r},{self.line})"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return (f"{self.path}:{self.line}: [{self.rule}/"
                f"{RULES[self.rule]}] {self.message}")


# --------------------------------------------------------------------
# Lexical engine: a small C++ scanner producing the unified tokens.
# --------------------------------------------------------------------

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_KEYWORDS = {"new", "delete", "operator"}


def lex_tokens(text):
    """Tokenize C++ source: identifiers, punctuation, comments,
    literals. Strings/chars collapse to one literal token so banned
    names inside them never match; comments are kept for R3."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            # A backslash immediately before the newline (phase-2 line
            # splice) continues the comment onto the next line.
            while j < n and (text[j - 1] == "\\" or
                             text[j - 2:j] == "\\\r"):
                j = text.find("\n", j + 1)
                j = n if j < 0 else j
            tokens.append(Token("comment", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            body = text[i:j + 2]
            tokens.append(Token("comment", body, line))
            line += body.count("\n")
            i = j + 2
        elif c == '"':
            # Defense in depth: if this quote opens a raw string whose
            # `R` prefix was consumed by an earlier token (possible
            # only after a lexing desync), honor the )delim" close
            # instead of stopping at the next bare quote.
            raw = (re.match(r'"([^()\\\s]{0,16})\(', text[i:])
                   if i >= 1 and text[i - 1] == "R" else None)
            if raw:
                close = f"){raw.group(1)}\""
                end = text.find(close, i)
                end = n if end < 0 else end + len(close)
                tokens.append(Token("literal", text[i:end], line))
                line += text.count("\n", i, end)
                i = end
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("literal", text[i:j + 1], line))
            line += text.count("\n", i, j + 1)
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("literal", text[i:j + 1], line))
            i = j + 1
        elif c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            spelling = text[i:j]
            # Raw string literal: R"delim( ... )delim"
            if spelling.endswith("R") and j < n and text[j] == '"':
                m = re.match(r'R"([^()\\ ]*)\(', text[j - 1:])
                if m:
                    end = text.find(f"){m.group(1)}\"", j)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    tokens.append(Token("literal", text[i:end], line))
                    line += text.count("\n", i, end)
                    i = end
                    continue
            kind = "kw" if spelling in _KEYWORDS else "id"
            tokens.append(Token(kind, spelling, line))
            i = j
        elif c.isdigit():
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _ID_CONT or ch == ".":
                    j += 1
                elif ch == "'" and j + 1 < n and text[j + 1] in _ID_CONT:
                    j += 2  # digit separator, e.g. 5'000
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            tokens.append(Token("literal", text[i:j], line))
            i = j
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


# --------------------------------------------------------------------
# libclang engine: the same token stream, produced by clang's lexer,
# plus the translation unit for the AST refinement pass.
# --------------------------------------------------------------------

def try_import_libclang():
    if os.environ.get("ANSMET_LINT_FORCE_NO_LIBCLANG"):
        return None
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()  # verifies libclang.so actually loads
        return cindex
    except Exception:
        return None


def compile_args_for(path, compdb_dir):
    """Extract the -I/-D/-std args recorded for path (or any TU) from
    compile_commands.json, so clang lexes under the project config."""
    cc_path = os.path.join(compdb_dir or "", "compile_commands.json")
    if not compdb_dir or not os.path.isfile(cc_path):
        return ["-std=c++20"]
    try:
        with open(cc_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, json.JSONDecodeError):
        return ["-std=c++20"]
    want = os.path.abspath(path)
    fallback = None
    for entry in db:
        args = entry.get("command", "").split()[1:]
        keep = [a for a in args
                if a.startswith(("-I", "-D", "-std=", "-isystem"))]
        if os.path.abspath(entry.get("file", "")) == want:
            return keep or ["-std=c++20"]
        fallback = fallback or keep
    return fallback or ["-std=c++20"]


def clang_parse(cindex, path, text, args):
    return cindex.TranslationUnit.from_source(
        path, args=args, unsaved_files=[(path, text)],
        options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)


def clang_tokens(cindex, tu, path):
    kinds = cindex.TokenKind
    out = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.location.file and tok.location.file.name != path:
            continue
        spelling = tok.spelling
        line = tok.location.line
        if tok.kind == kinds.COMMENT:
            out.append(Token("comment", spelling, line))
        elif tok.kind == kinds.LITERAL:
            out.append(Token("literal", spelling, line))
        elif tok.kind == kinds.IDENTIFIER:
            out.append(Token("id", spelling, line))
        elif tok.kind == kinds.KEYWORD:
            out.append(Token("kw" if spelling in _KEYWORDS else "id",
                             spelling, line))
        else:  # punctuation: split multi-char operators into chars
            for ch in spelling:
                out.append(Token("punct", ch, line))
    return out


def ast_refine(cindex, tu, findings):
    """Cursor-visitation refinement (libclang engine only).

    Walks the AST and drops structural findings the AST disproves:
    an R6 finding whose time argument actually references a variable
    or call, and an R8 finding on a line no lambda expression spans.
    The pass only ever REMOVES findings, so the lexical engine stays a
    strict superset, and it bails out wholesale when the translation
    unit did not parse cleanly (a broken AST proves nothing).
    """
    try:
        if any(d.severity >= cindex.Diagnostic.Error
               for d in tu.diagnostics):
            return findings
        kinds = cindex.CursorKind
        value_ref_kinds = {kinds.DECL_REF_EXPR, kinds.MEMBER_REF_EXPR,
                           kinds.CALL_EXPR}
        r6_disproved = set()
        lambda_lines = set()
        for cur in tu.cursor.walk_preorder():
            loc = cur.location
            if loc.file is None or loc.file.name != tu.spelling:
                continue
            if cur.kind == kinds.LAMBDA_EXPR:
                ext = cur.extent
                lambda_lines.update(
                    range(ext.start.line, ext.end.line + 1))
            elif (cur.kind == kinds.CALL_EXPR and
                  cur.spelling in TIME_ARG_CALLS):
                k = TIME_ARG_CALLS[cur.spelling]
                args = list(cur.get_arguments())
                if k >= len(args):
                    continue
                seen = {c.kind for c in args[k].walk_preorder()}
                if seen & value_ref_kinds:
                    ext = args[k].extent
                    r6_disproved.update(
                        range(ext.start.line, ext.end.line + 1))
        kept = []
        for f in findings:
            if f.rule == "R6" and f.line in r6_disproved:
                continue
            if f.rule == "R8" and f.line not in lambda_lines:
                continue
            kept.append(f)
        return kept
    except Exception:
        return findings


# --------------------------------------------------------------------
# Suppression handling
# --------------------------------------------------------------------

def suppressed_lines(tokens):
    """Map rule-name -> set of line numbers waived by NOLINT comments."""
    waived = {}
    for tok in tokens:
        if tok.kind != "comment" or "NOLINT" not in tok.spelling:
            continue
        m = NOLINT_RE.search(tok.spelling)
        if not m:
            continue
        variant = m.group(1) or ""
        names = [s.strip() for s in (m.group(3) or "").split(",")
                 if s.strip()]
        last_line = tok.line + tok.spelling.count("\n")
        target = last_line + 1 if variant == "NEXTLINE" else tok.line
        for name in names or ["*"]:
            waived.setdefault(name, set()).add(target)
    return waived


def is_waived(waived, rule_name, line):
    for name in (rule_name, "*"):
        if line in waived.get(name, set()):
            return True
    return False


# --------------------------------------------------------------------
# Structural helpers shared by the R6/R7/R8 analyses
# --------------------------------------------------------------------

def code_tokens(tokens):
    return [t for t in tokens if t.kind in ("id", "kw", "punct",
                                            "literal")]


def skip_balanced(code, i, open_s, close_s):
    """code[i] must be open_s; return the index just past its matching
    close_s, or None when unbalanced."""
    depth = 0
    n = len(code)
    while i < n:
        s = code[i].spelling
        if s == open_s:
            depth += 1
        elif s == close_s:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return None


def _tok_at(code, k):
    """Spelling of code[k], or '' when out of range."""
    return code[k].spelling if 0 <= k < len(code) else ""


def _match_backward(code, j, open_s, close_s):
    """code[j] must be close_s; return the index of its matching
    open_s, or None when unbalanced."""
    depth = 0
    while j >= 0:
        s = code[j].spelling
        if s == close_s:
            depth += 1
        elif s == open_s:
            depth -= 1
            if depth == 0:
                return j
        j -= 1
    return None


def _skip_angles(code, i, hi):
    """code[i] must be '<'; return the index just past the matching
    '>' (template argument list), or None. Bails at ';' or '{' so a
    stray less-than comparison cannot swallow the file."""
    depth = 0
    while i < hi:
        s = code[i].spelling
        if s == "<":
            depth += 1
        elif s == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif s in (";", "{"):
            return None
        i += 1
    return None


def split_top_commas(arg_tokens):
    """Split an argument token slice at depth-zero commas."""
    args = []
    cur = []
    depth = 0
    for t in arg_tokens:
        s = t.spelling
        if s in "([{":
            depth += 1
        elif s in ")]}":
            depth -= 1
        if s == "," and depth == 0:
            args.append(cur)
            cur = []
        else:
            cur.append(t)
    args.append(cur)
    return args


def render_expr(expr_tokens):
    return "".join(t.spelling for t in expr_tokens)


# --------------------------------------------------------------------
# Rule implementations R1-R5 (token-level; shared by both engines)
# --------------------------------------------------------------------

def path_in(path, prefixes):
    rel = path.replace(os.sep, "/")
    return any(f"/{p}/" in f"/{rel}/" or rel.startswith(p + "/")
               for p in prefixes)


def check_determinism(path, tokens, waived, findings):
    if not path_in(path, DETERMINISTIC_DIRS):
        return
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    for idx, tok in enumerate(code):
        if tok.kind != "id":
            continue
        reason = None
        name = tok.spelling
        if name in BANNED_RANDOM:
            reason = BANNED_RANDOM[name]
        elif name in BANNED_CLOCK:
            reason = BANNED_CLOCK[name]
        elif name == "time":
            # Only the call `time(...)` is banned; `time` as a field or
            # parameter name stays legal.
            nxt = code[idx + 1] if idx + 1 < len(code) else None
            prv = code[idx - 1] if idx > 0 else None
            called = nxt is not None and nxt.spelling == "("
            member = prv is not None and prv.spelling in (".", ">")
            if called and not member:
                reason = "wall-clock time() must not feed simulated " \
                         "output"
        if reason and not is_waived(waived, RULES["R1"], tok.line):
            findings.append(Finding(
                path, tok.line, "R1",
                f"'{name}' in a deterministic directory: {reason}; "
                f"common::Prng is the only sanctioned randomness"))


def check_raw_new_delete(path, tokens, waived, findings):
    code = code_tokens(tokens)
    for idx, tok in enumerate(code):
        if tok.kind != "kw" or tok.spelling not in ("new", "delete"):
            continue
        prv = code[idx - 1] if idx > 0 else None
        nxt = code[idx + 1] if idx + 1 < len(code) else None
        # `#include <new>` lexes the header name as the keyword.
        if (prv is not None and prv.spelling == "<" and
                nxt is not None and nxt.spelling == ">"):
            continue
        if tok.spelling == "delete":
            # `= delete` (deleted functions) and `operator delete`.
            if prv is not None and prv.spelling in ("=", "operator"):
                continue
        else:
            # Placement new `new (addr) T` is allowed: it constructs
            # into storage owned elsewhere. `operator new` decls too.
            if prv is not None and prv.spelling == "operator":
                continue
            if nxt is not None and nxt.spelling == "(":
                continue
        if is_waived(waived, RULES["R2"], tok.line):
            continue
        findings.append(Finding(
            path, tok.line, "R2",
            f"raw '{tok.spelling}': ownership must go through smart "
            f"pointers or containers"))


def check_nolint_justified(path, tokens, findings):
    for tok in tokens:
        if tok.kind != "comment":
            continue
        for m in re.finditer(r"NOLINT\w*", tok.spelling):
            sub = tok.spelling[m.start():]
            mm = NOLINT_RE.match(sub)
            variant = mm.group(1) or ""
            if variant == "END":
                continue  # the BEGIN marker carries the justification
            trailing = (mm.group(4) or "").strip()
            # Strip comment furniture, then require real words.
            trailing = re.sub(r"[*/\s:;,-]+", " ", trailing).strip()
            line = tok.line + tok.spelling.count("\n", 0, m.start())
            if len(trailing) < 8:
                findings.append(Finding(
                    path, line, "R3",
                    "NOLINT without a written justification; append "
                    "': <why this suppression is sound>'"))
            if not mm.group(3):
                findings.append(Finding(
                    path, line, "R3",
                    "blanket NOLINT; name the suppressed check(s), "
                    "e.g. NOLINT(concurrency-mt-unsafe)"))


def check_raw_sync(path, tokens, waived, findings):
    norm = path.replace(os.sep, "/")
    if norm.endswith("common/sync.h"):
        return
    spawn_exempt = (any(f"/{d}/" in norm or norm.startswith(f"{d}/")
                        for d in THREAD_EXEMPT_DIRS) or
                    norm.endswith(THREAD_EXEMPT_FILES))
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    for idx, tok in enumerate(code):
        if tok.kind != "id":
            continue
        is_sync = tok.spelling in BANNED_SYNC
        is_spawn = tok.spelling in BANNED_THREAD_SPAWN and not spawn_exempt
        if not (is_sync or is_spawn):
            continue
        # Require the std:: qualification: `std` `:` `:` `mutex`.
        if idx < 3:
            continue
        if not (code[idx - 1].spelling == ":" and
                code[idx - 2].spelling == ":" and
                code[idx - 3].spelling == "std"):
            continue
        if is_waived(waived, RULES["R4"], tok.line):
            continue
        if is_sync:
            findings.append(Finding(
                path, tok.line, "R4",
                f"raw std::{tok.spelling}: use the annotated wrappers in "
                f"common/sync.h (Mutex/SharedMutex/CondVar + MutexLock/"
                f"ReaderLock/WriterLock) so thread-safety analysis sees "
                f"the contract"))
        else:
            findings.append(Finding(
                path, tok.line, "R4",
                f"raw std::{tok.spelling}: spawn through the task runtime "
                f"(common/runtime/Runtime, TaskGroup, parallelFor) or the "
                f"ThreadPool facade so worker count, core affinity, and "
                f"drain-then-join shutdown stay centralized"))


def check_event_capture(path, tokens, waived, findings):
    if not path_in(path, SIM_HOT_DIRS):
        return
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    n = len(code)
    for idx, tok in enumerate(code):
        if tok.kind != "id" or tok.spelling not in SCHEDULE_CALLS:
            continue
        if idx + 1 >= n or code[idx + 1].spelling != "(":
            continue
        # Walk the balanced argument list of the call; any qualified
        # `std :: function` token run inside it is a finding.
        depth = 0
        j = idx + 1
        while j < n:
            s = code[j].spelling
            if s == "(":
                depth += 1
            elif s == ")":
                depth -= 1
                if depth == 0:
                    break
            elif (s == "function" and code[j].kind == "id" and j >= 3 and
                  code[j - 1].spelling == ":" and
                  code[j - 2].spelling == ":" and
                  code[j - 3].spelling == "std"):
                if not is_waived(waived, RULES["R5"], code[j].line):
                    findings.append(Finding(
                        path, code[j].line, "R5",
                        "std::function inside a schedule()/scheduleIn() "
                        "argument: event callbacks are inline "
                        "(sim::EventQueue::Callback); a std::function "
                        "capture heap-allocates on the hot path"))
            j += 1


# --------------------------------------------------------------------
# R6 ansmet-tickunits: raw integer literals in time arguments
# --------------------------------------------------------------------

def check_tick_units(path, tokens, waived, findings):
    if not path_in(path, SIM_HOT_DIRS):
        return
    code = code_tokens(tokens)
    n = len(code)
    for idx, tok in enumerate(code):
        if tok.kind != "id" or tok.spelling not in TIME_ARG_CALLS:
            continue
        if idx + 1 >= n or code[idx + 1].spelling != "(":
            continue
        end = skip_balanced(code, idx + 1, "(", ")")
        if end is None:
            continue
        args = split_top_commas(code[idx + 2:end - 1])
        k = TIME_ARG_CALLS[tok.spelling]
        if k >= len(args) or not args[k]:
            continue
        arg = args[k]
        # An identifier anywhere in the argument means the value went
        # through a name — a Tick{}/TickDelta{} constructor, a typed
        # variable, or an expression over them. Only a pure-literal
        # argument (possibly parenthesized / negated) is unit-blind.
        if any(t.kind in ("id", "kw") for t in arg):
            continue
        lits = [t for t in arg
                if t.kind == "literal" and t.spelling[:1].isdigit()]
        if not lits:
            continue
        lit = lits[0]
        if is_waived(waived, RULES["R6"], lit.line):
            continue
        findings.append(Finding(
            path, lit.line, "R6",
            f"raw integer literal '{lit.spelling}' as the time argument "
            f"of {tok.spelling}(): simulated times are unit-typed; "
            f"construct a sim::Tick{{...}} / sim::TickDelta{{...}} "
            f"instead"))


# --------------------------------------------------------------------
# R7 ansmet-lockorder: static lock-acquisition cycle detection
# --------------------------------------------------------------------

# Keywords that look like `name (` but never head a definition or call
# worth tracking.
_CONTROL = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "catch", "throw", "assert", "else",
    "do", "case", "default", "co_await", "co_return", "co_yield",
    "alignas", "noexcept", "typeid", "requires",
}


class FuncInfo:
    __slots__ = ("name", "owner", "path", "acquisitions", "calls",
                 "requires", "params", "body", "t_returns",
                 "t_param_sink")

    def __init__(self, name, owner, path):
        self.name = name  # "Class::method" or bare function name
        self.owner = owner  # enclosing/qualifying class, or None
        self.path = path
        # (lock_id, line, frozenset(locks held at the acquisition))
        self.acquisitions = []
        # (callee name, explicit qualifier or None, line,
        #  frozenset(locks held))
        self.calls = []
        self.requires = set()  # ANSMET_REQUIRES locks, held body-wide
        self.params = []  # parameter names, in declaration order
        self.body = (0, 0)  # [start, end) into the file's code tokens
        # R9 taint summary: labels a return value may carry ("src" or
        # a parameter index), and param index -> sink description for
        # parameters that reach a sink inside this function.
        self.t_returns = set()
        self.t_param_sink = {}


def _qualify(owner, expr):
    return f"{owner}::{expr}" if owner else expr


def _scan_function_body(code, body_start, owner, func):
    """Walk one function body collecting scoped-lock acquisitions and
    every call site with the set of locks held at it. Returns the index
    just past the closing brace."""
    n = len(code)
    i = body_start  # at '{'
    depth = 0
    active = []  # (depth at acquisition, lock_id)
    base = frozenset(func.requires)
    while i < n:
        t = code[i]
        s = t.spelling
        if s == "{":
            depth += 1
            i += 1
            continue
        if s == "}":
            depth -= 1
            while active and active[-1][0] > depth:
                active.pop()
            i += 1
            if depth == 0:
                return i
            continue
        if (t.kind == "id" and s in LOCK_CLASSES and i + 2 < n and
                code[i + 1].kind == "id" and
                code[i + 2].spelling in ("(", "{")):
            open_s = code[i + 2].spelling
            close_s = ")" if open_s == "(" else "}"
            end = skip_balanced(code, i + 2, open_s, close_s)
            if end is not None:
                lock_id = _qualify(owner,
                                   render_expr(code[i + 3:end - 1]))
                held = base | {lk for _, lk in active}
                func.acquisitions.append((lock_id, t.line,
                                          frozenset(held)))
                active.append((depth, lock_id))
                i = end
                continue
        if (t.kind == "id" and s not in _CONTROL and
                s not in LOCK_CLASSES and i + 1 < n and
                code[i + 1].spelling == "("):
            qual = None
            keep = True
            if i >= 1 and code[i - 1].spelling in (".", "->"):
                # Member call on some object. Only `this->f()` is
                # resolvable by name; a call through another object
                # (`obj.load()`, `ptr->find()`) routinely collides
                # with unrelated project functions, so skip it rather
                # than poison the graph with false edges.
                keep = (code[i - 1].spelling == "->" and i >= 2 and
                        code[i - 2].spelling == "this")
            elif (i >= 3 and code[i - 1].spelling == ":" and
                    code[i - 2].spelling == ":" and
                    code[i - 3].kind == "id" and
                    code[i - 3].spelling not in ("std",)):
                qual = code[i - 3].spelling
            if keep:
                held = base | {lk for _, lk in active}
                func.calls.append((s, qual, t.line, frozenset(held)))
        i += 1
    return n


def parse_lock_functions(path, tokens, code=None):
    """Structural parse of one file: function definitions with their
    scoped-lock acquisitions, ANSMET_REQUIRES preconditions, the calls
    made under held locks, parameter names, and body token ranges (the
    R9/R12 passes index into the same code-token list). Tolerant by
    construction — anything it cannot prove to be a function definition
    is skipped."""
    if code is None:
        code = code_tokens(tokens)
    n = len(code)
    funcs = []
    class_stack = []  # (name, depth inside the class body)
    depth = 0
    i = 0
    while i < n:
        t = code[i]
        s = t.spelling
        if s == "{":
            depth += 1
            i += 1
            continue
        if s == "}":
            depth -= 1
            while class_stack and depth < class_stack[-1][1]:
                class_stack.pop()
            i += 1
            continue
        if t.kind == "id" and s in ("class", "struct"):
            name = None
            j = i + 1
            while j < n and code[j].spelling not in ("{", ";", ":"):
                if code[j].spelling == "(":  # attribute macro args
                    j = skip_balanced(code, j, "(", ")") or n
                    continue
                if code[j].kind == "id":
                    name = code[j].spelling
                j += 1
            while j < n and code[j].spelling not in ("{", ";"):
                j += 1
            if j < n and code[j].spelling == "{" and name:
                class_stack.append((name, depth + 1))
            i += 1
            continue
        if (t.kind == "id" and s not in _CONTROL and i + 1 < n and
                code[i + 1].spelling == "("):
            parsed = _try_parse_function(path, code, i, class_stack)
            if parsed is not None:
                func, next_i = parsed
                funcs.append(func)
                i = next_i
                continue
        i += 1
    return funcs


def _try_parse_function(path, code, i, class_stack):
    """Attempt to parse a function definition headed at code[i]
    (an identifier followed by '('). Returns (FuncInfo, index past the
    body) or None when this is not a definition."""
    n = len(code)
    name = code[i].spelling
    owner = None
    if (i >= 3 and code[i - 1].spelling == ":" and
            code[i - 2].spelling == ":" and code[i - 3].kind == "id"):
        owner = code[i - 3].spelling
    elif class_stack:
        owner = class_stack[-1][0]
    params_end = skip_balanced(code, i + 1, "(", ")")
    if params_end is None:
        return None
    requires = set()
    seen_init_colon = False
    k = params_end
    while k < n:
        s = code[k].spelling
        if s in (";", "}", "="):
            return None  # declaration, `= default/delete`, initializer
        if (code[k].kind == "id" and s in REQUIRES_MACROS and
                k + 1 < n and code[k + 1].spelling == "("):
            end = skip_balanced(code, k + 1, "(", ")")
            if end is None:
                return None
            for arg in split_top_commas(code[k + 2:end - 1]):
                if arg:
                    requires.add(_qualify(owner, render_expr(arg)))
            k = end
            continue
        if s == "(":  # noexcept(...), other annotation macros
            k = skip_balanced(code, k, "(", ")") or n
            continue
        if s == ":":
            seen_init_colon = True
            k += 1
            continue
        if s == "{":
            if seen_init_colon and code[k - 1].kind == "id":
                # Brace member-init inside a ctor init list: b_{2}
                k = skip_balanced(code, k, "{", "}") or n
                continue
            break  # the function body
        k += 1
    else:
        return None
    func = FuncInfo(f"{owner}::{name}" if owner else name, owner, path)
    func.requires = requires
    for slice_ in split_top_commas(code[i + 2:params_end - 1]):
        ids = []
        for tk in slice_:
            if tk.spelling == "=":
                break  # default argument: the name precedes it
            if tk.kind == "id":
                ids.append(tk.spelling)
        # The parameter name is the last identifier of the declarator
        # (`const std::vector<int> &xs` -> xs); unnamed params keep "".
        func.params.append(ids[-1] if ids else "")
    body_end = _scan_function_body(code, k, owner, func)
    func.body = (k, body_end)
    return func, body_end


def check_lock_order(lock_facts, findings):
    """Global pass: build the lock-order graph across every scanned
    file and report each cycle once, with its full path.

    lock_facts: list of (path, [FuncInfo], waived-map) triples.
    """
    funcs_by_last = {}
    for _, funcs, _ in lock_facts:
        for f in funcs:
            funcs_by_last.setdefault(f.name.split("::")[-1],
                                     []).append(f)

    def resolve(callee, qual, caller):
        """Candidate definitions for a call site. An explicit `Foo::`
        qualifier pins the owner; an unqualified call resolves only to
        methods of the caller's own class or to free functions —
        cross-class resolution by bare name is how unrelated functions
        that happen to share a method name (e.g. `load`) would
        otherwise pollute the graph."""
        out = []
        for g in funcs_by_last.get(callee, ()):
            if qual is not None:
                if g.owner == qual:
                    out.append(g)
            elif g.owner is None or g.owner == caller.owner:
                out.append(g)
        return out

    # Transitive may-acquire sets, propagated through direct calls.
    every = [f for _, funcs, _ in lock_facts for f in funcs]
    trans = {id(f): {a[0] for a in f.acquisitions} for f in every}
    changed = True
    rounds = 0
    while changed and rounds < 64:
        changed = False
        rounds += 1
        for f in every:
            for callee, qual, _, _ in f.calls:
                for g in resolve(callee, qual, f):
                    add = trans[id(g)] - trans[id(f)]
                    if add:
                        trans[id(f)] |= add
                        changed = True

    # Edges A -> B: lock B acquired (directly or via a call) while A is
    # held. Witness: where the edge is introduced.
    edges = {}  # (A, B) -> (path, line, description)
    for path, funcs, waived in lock_facts:
        for f in funcs:
            for lock, line, held in f.acquisitions:
                if is_waived(waived, RULES["R7"], line):
                    continue
                for a in sorted(held):
                    if a != lock:
                        edges.setdefault(
                            (a, lock),
                            (path, line, f"{f.name} acquires {lock}"))
            for callee, qual, line, held in f.calls:
                if not held or is_waived(waived, RULES["R7"], line):
                    continue
                for g in resolve(callee, qual, f):
                    for lock in sorted(trans[id(g)]):
                        for a in sorted(held):
                            if a != lock:
                                edges.setdefault(
                                    (a, lock),
                                    (path, line,
                                     f"{f.name} calls {g.name} which "
                                     f"acquires {lock}"))

    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, []).append(b)
    for nbrs in adj.values():
        nbrs.sort()

    # Iterative coloring DFS; every cycle is reported once, normalized
    # by rotating its smallest lock to the front.
    color = {}
    reported = set()

    def emit(cycle):
        pivot = cycle.index(min(cycle))
        norm = tuple(cycle[pivot:] + cycle[:pivot])
        if norm in reported:
            return
        reported.add(norm)
        ring = list(norm) + [norm[0]]
        hops = []
        for a, b in zip(ring, ring[1:]):
            epath, eline, edesc = edges[(a, b)]
            hops.append(f"{a} -> {b} [{edesc} at {epath}:{eline}]")
        first = edges[(ring[0], ring[1])]
        findings.append(Finding(
            first[0], first[1], "R7",
            "lock-order cycle (latent deadlock): "
            + " -> ".join(ring) + "; " + "; ".join(hops)))

    def dfs(root):
        stack = [(root, iter(adj.get(root, ())))]
        path = [root]
        color[root] = "gray"
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt) == "gray":
                    emit(path[path.index(nxt):])
                elif color.get(nxt) is None:
                    color[nxt] = "gray"
                    stack.append((nxt, iter(adj.get(nxt, ()))))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = "black"
                stack.pop()
                path.pop()

    for node in sorted(adj):
        if color.get(node) is None:
            dfs(node)


# --------------------------------------------------------------------
# R8 ansmet-danglecapture: by-reference captures escaping into
# deferred callbacks
# --------------------------------------------------------------------

def _callback_sink_ranges(code):
    """Yield (lo, hi, description) index ranges of code token slices
    whose lambdas become deferred callbacks: schedule()/scheduleIn()
    argument lists and the right-hand side of `onComplete = ...`."""
    n = len(code)
    for idx, t in enumerate(code):
        if t.kind != "id":
            continue
        if (t.spelling in SCHEDULE_CALLS and idx + 1 < n and
                code[idx + 1].spelling == "("):
            end = skip_balanced(code, idx + 1, "(", ")")
            if end is not None:
                yield idx + 2, end - 1, f"{t.spelling}()"
        elif (t.spelling in CALLBACK_FIELDS and idx + 1 < n and
              code[idx + 1].spelling == "=" and
              (idx + 2 >= n or code[idx + 2].spelling != "=")):
            j = idx + 2
            depth = 0
            while j < n:
                s = code[j].spelling
                if s in "([{":
                    depth += 1
                elif s in ")]}":
                    depth -= 1
                    if depth < 0:
                        break
                elif s == ";" and depth == 0:
                    break
                j += 1
            yield idx + 2, j, f"{t.spelling} assignment"


def check_dangle_capture(path, tokens, waived, findings):
    if not path_in(path, SIM_HOT_DIRS):
        return
    code = code_tokens(tokens)
    for lo, hi, what in _callback_sink_ranges(code):
        j = lo
        while j < hi:
            t = code[j]
            if t.spelling != "[":
                j += 1
                continue
            prev = code[j - 1] if j > 0 else None
            # `[` after a value expression is a subscript, not a
            # lambda introducer.
            if prev is not None and (prev.kind in ("id", "literal") or
                                     prev.spelling in (")", "]")):
                j += 1
                continue
            end = skip_balanced(code, j, "[", "]")
            if end is None:
                j += 1
                continue
            for cap in split_top_commas(code[j + 1:end - 1]):
                if not cap:
                    continue
                bad = None
                if cap[0].spelling == "&":
                    if len(cap) == 1:
                        bad = "the enclosing frame by reference ([&])"
                    else:
                        bad = (f"'{cap[1].spelling}' by reference "
                               f"(&{cap[1].spelling})")
                if bad and not is_waived(waived, RULES["R8"], t.line):
                    findings.append(Finding(
                        path, t.line, "R8",
                        f"deferred callback in {what} captures {bad}: "
                        f"the callback runs after the enclosing frame "
                        f"is gone; capture by value or [this]"))
            j = end


# --------------------------------------------------------------------
# R9 ansmet-detflow: nondeterministic values flowing into simulated
# state (conservative interprocedural taint over the token stream)
# --------------------------------------------------------------------
#
# Conservatism contract (see DESIGN.md): any expression CONTAINING a
# tainted subexpression is tainted (no sanitization, no kill); taint
# propagates through assignments (incl. compound and container-grow
# calls), returns, and calls resolvable inside the same file (bare
# names, this->, and Class:: qualified — member calls on other objects
# are deliberately NOT resolved). Labels are "src" (a concrete
# nondeterminism source) or an integer parameter index; a finding is
# reported where a "src"-labelled value meets a sink, either directly
# or through a callee whose parameter summary reaches one.


def _source_at(code, j, hi, unordered):
    """True when code[j] heads a nondeterminism source expression."""
    t = code[j]
    s = t.spelling

    def at(k):
        return code[k].spelling if k < hi else ""

    if s in unordered:
        if at(j + 1) == "." and at(j + 2) in _ITER_METHODS:
            return True
        if (at(j + 1) == "-" and at(j + 2) == ">" and
                at(j + 3) in _ITER_METHODS):
            return True
        return False
    if s in _NONDET_CALLS and at(j + 1) == "(":
        return True
    if s == "hash" and at(j + 1) == "<":
        end = _skip_angles(code, j + 1, hi)
        return end is not None and any(
            code[k].spelling == "*" for k in range(j + 2, end - 1))
    if s == "reinterpret_cast" and at(j + 1) == "<":
        end = _skip_angles(code, j + 1, hi)
        if end is None:
            return False
        tgt = code[j + 2:end - 1]
        has_int = any(tk.spelling in _INT_CAST_TARGETS for tk in tgt)
        has_ind = any(tk.spelling in ("*", "&") for tk in tgt)
        return has_int and not has_ind
    return False


def collect_unordered_names(code):
    """Names declared with an unordered container type anywhere in the
    file (members, locals, parameters). Name-based, not scope-aware —
    conservative by design."""
    names = set()
    n = len(code)
    for idx, tok in enumerate(code):
        if tok.kind != "id" or tok.spelling not in UNORDERED_CONTAINERS:
            continue
        j = idx + 1
        if _tok_at(code, j) == "<":
            e = _skip_angles(code, j, min(n, j + 256))
            if e is None:
                continue
            j = e
        while j < n and code[j].spelling in ("&", "*", "const"):
            j += 1
        if j < n and code[j].kind == "id":
            names.add(code[j].spelling)
    return names


class _TaintPass:
    """One file's interprocedural taint analysis (R9)."""

    def __init__(self, path, code, funcs, unordered, waived):
        self.path = path
        self.code = code
        self.funcs = funcs
        self.unordered = unordered
        self.waived = waived
        self.found = {}  # (line, message) -> None; insertion-ordered
        self.by_last = {}
        for f in funcs:
            self.by_last.setdefault(f.name.split("::")[-1],
                                    []).append(f)

    def resolve(self, callee, qual, owner):
        """Same resolution discipline as the lock-order pass: an
        explicit qualifier pins the owner; a bare call resolves to the
        caller's own class or to free functions."""
        out = []
        for g in self.by_last.get(callee, ()):
            if qual is not None:
                if g.owner == qual:
                    out.append(g)
            elif g.owner is None or g.owner == owner:
                out.append(g)
        return out

    def run(self, findings):
        for f in self.funcs:
            f.t_returns = set()
            f.t_param_sink = {}
        for _ in range(8):  # cross-function fixpoint over summaries
            before = [(frozenset(f.t_returns),
                       tuple(sorted(f.t_param_sink)))
                      for f in self.funcs]
            for f in self.funcs:
                self._analyze(f)
            after = [(frozenset(f.t_returns),
                      tuple(sorted(f.t_param_sink)))
                     for f in self.funcs]
            if after == before:
                break
        for (line, message) in self.found:
            if not is_waived(self.waived, RULES["R9"], line):
                findings.append(Finding(self.path, line, "R9", message))

    # -- per-function ------------------------------------------------

    def _analyze(self, f):
        env = {p: {k} for k, p in enumerate(f.params) if p}
        for _ in range(8):  # intra-function fixpoint
            snap = {k: set(v) for k, v in env.items()}
            rsnap = set(f.t_returns)
            psnap = dict(f.t_param_sink)
            self._walk(f, env)
            if (env == snap and f.t_returns == rsnap and
                    f.t_param_sink == psnap):
                break

    def _walk(self, f, env):
        code = self.code
        lo, hi = f.body
        j = lo
        while j < hi:
            t = code[j]
            s = t.spelling
            if t.kind == "id" and s == "for" and \
                    _tok_at(code, j + 1) == "(":
                j = self._range_for(f, env, j, hi)
                continue
            if t.kind == "id" and s == "return":
                end = self._stmt_end(j + 1, hi)
                f.t_returns |= self._labels(f, env, code[j + 1:end])
                j = end
                continue
            if s == "=" and self._is_assign(j):
                self._assign(f, env, j, hi)
                j += 1
                continue
            if t.kind == "id" and _tok_at(code, j + 1) == "(":
                self._call_site(f, env, j, hi)
            j += 1

    def _is_assign(self, j):
        code = self.code
        nxt = _tok_at(code, j + 1)
        prv = _tok_at(code, j - 1)
        if nxt == "=" or prv in ("=", "<", ">", "!"):
            return False  # ==, <=, >=, !=
        if prv in ("[", "operator") or nxt == "]":
            return False  # [=] capture, operator=
        return True

    def _stmt_end(self, j, hi):
        code = self.code
        depth = 0
        while j < hi:
            s = code[j].spelling
            if s in "([{":
                depth += 1
            elif s in ")]}":
                if depth == 0:
                    return j
                depth -= 1
            elif s in (";", ",") and depth == 0:
                return j
            j += 1
        return hi

    def _sink(self, f, labels, line, what):
        if "src" in labels:
            self.found[(line,
                        f"nondeterministic value (derived from "
                        f"unordered-container iteration order, pointer "
                        f"bits, or a thread id) flows into {what}; "
                        f"simulated outcomes must not depend on "
                        f"it")] = None
        for lbl in labels:
            if isinstance(lbl, int):
                f.t_param_sink.setdefault(lbl, what)

    def _range_for(self, f, env, j, hi):
        code = self.code
        pe = skip_balanced(code, j + 1, "(", ")")
        if pe is None or pe > hi:
            return j + 1
        inner = code[j + 2:pe - 1]
        ci = None
        for k, t in enumerate(inner):
            if (t.spelling == ":" and
                    _tok_at(inner, k - 1) != ":" and
                    _tok_at(inner, k + 1) != ":"):
                ci = k
                break
        if ci is None:
            return j + 1  # classic for; the main walk scans its parts
        decl, rng = inner[:ci], inner[ci + 1:]
        labels = set(self._labels(f, env, rng))
        if any(t.kind == "id" and t.spelling in self.unordered
               for t in rng):
            labels.add("src")
        if labels:
            for t in decl:
                if t.kind == "id" and t.spelling not in _TYPEISH_IDS:
                    env.setdefault(t.spelling, set()).update(labels)
        return pe

    def _assign(self, f, env, j, hi):
        code = self.code
        k = j - 1
        if code[k].spelling in "+-*/%&|^":
            k -= 1  # compound assignment: +=, |=, ...
        while k >= 0 and code[k].spelling == "]":
            op = _match_backward(code, k, "[", "]")
            if op is None:
                return
            k = op - 1
        if k < 0 or code[k].kind != "id":
            return
        target = code[k].spelling
        end = self._stmt_end(j + 1, hi)
        labels = self._labels(f, env, code[j + 1:end])
        if not labels:
            return
        env.setdefault(target, set()).update(labels)
        if target.endswith("_"):
            self._sink(f, labels, code[j].line,
                       f"the simulator state member '{target}'")

    def _call_shape(self, j):
        """Classify the call headed at code[j]: (member, this_call,
        qual) — member call on another object, explicit this-> call,
        or Class:: qualifier."""
        code = self.code
        prv = _tok_at(code, j - 1)
        member = prv == "." or (prv == ">" and
                                _tok_at(code, j - 2) == "-")
        this_call = (prv == ">" and _tok_at(code, j - 2) == "-" and
                     _tok_at(code, j - 3) == "this")
        qual = None
        if (prv == ":" and _tok_at(code, j - 2) == ":" and
                j >= 3 and code[j - 3].kind == "id" and
                code[j - 3].spelling != "std"):
            qual = code[j - 3].spelling
        return member, this_call, qual

    def _call_site(self, f, env, j, hi):
        code = self.code
        s = code[j].spelling
        if s in _CONTROL or s in LOCK_CLASSES:
            return
        end = skip_balanced(code, j + 1, "(", ")")
        if end is None:
            return
        args = (split_top_commas(code[j + 2:end - 1])
                if end - 1 > j + 2 else [])
        member, this_call, qual = self._call_shape(j)
        if s in SCHEDULE_CALLS:
            for a_i, a in enumerate(args):
                self._sink(f, self._labels(f, env, a), code[j].line,
                           f"argument {a_i + 1} of {s}() "
                           f"(event scheduling)")
            return
        if member and not this_call and s in _OBS_RECORD_METHODS:
            for a in args:
                self._sink(f, self._labels(f, env, a), code[j].line,
                           f"the obs-recorded value of .{s}()")
            return
        if member and not this_call and s in _GROW_METHODS:
            # recv.push_back(tainted) taints recv; growing a member
            # container is also a state write (the insertion ORDER is
            # what replay depends on).
            k = j - 2 if _tok_at(code, j - 1) == "." else j - 3
            if k >= 0 and code[k].kind == "id":
                recv = code[k].spelling
                labels = set()
                for a in args:
                    labels |= self._labels(f, env, a)
                if labels:
                    env.setdefault(recv, set()).update(labels)
                    if recv.endswith("_"):
                        self._sink(f, labels, code[j].line,
                                   f"the simulator state member "
                                   f"'{recv}' (via .{s}())")
            return
        if member and not this_call:
            return  # unresolvable: a method of some other object
        for g in self.resolve(s, qual, f.owner):
            for k_idx, what in sorted(g.t_param_sink.items()):
                if k_idx >= len(args):
                    continue
                labels = self._labels(f, env, args[k_idx])
                if "src" in labels:
                    self.found[(code[j].line,
                                f"nondeterministic value passed as "
                                f"argument {k_idx + 1} of {g.name}(), "
                                f"which forwards it into "
                                f"{what}")] = None
                for lbl in labels:
                    if isinstance(lbl, int):
                        f.t_param_sink.setdefault(
                            lbl, f"{g.name}() -> {what}")

    def _labels(self, f, env, toks, depth=0):
        """Taint labels of an expression token list: union over every
        tainted name it contains, every source pattern, and the mapped
        return summaries of resolvable calls."""
        out = set()
        if depth > 6:
            return out
        n = len(toks)
        j = 0
        while j < n:
            t = toks[j]
            if t.kind == "id":
                if _source_at(toks, j, n, self.unordered):
                    out.add("src")
                prv = _tok_at(toks, j - 1)
                is_field = prv == "." or (prv == ">" and
                                          _tok_at(toks, j - 2) == "-")
                if t.spelling in env and not is_field:
                    out |= env[t.spelling]
                if _tok_at(toks, j + 1) == "(" and \
                        t.spelling not in _CONTROL:
                    member = is_field
                    this_call = (prv == ">" and
                                 _tok_at(toks, j - 2) == "-" and
                                 _tok_at(toks, j - 3) == "this")
                    qual = None
                    if (prv == ":" and _tok_at(toks, j - 2) == ":" and
                            j >= 3 and toks[j - 3].kind == "id" and
                            toks[j - 3].spelling != "std"):
                        qual = toks[j - 3].spelling
                    if not member or this_call:
                        end = skip_balanced(toks, j + 1, "(", ")")
                        if end is not None:
                            args = (split_top_commas(
                                toks[j + 2:end - 1])
                                if end - 1 > j + 2 else [])
                            for g in self.resolve(t.spelling, qual,
                                                  f.owner):
                                for r in g.t_returns:
                                    if r == "src":
                                        out.add("src")
                                    elif (isinstance(r, int) and
                                          r < len(args)):
                                        out |= self._labels(
                                            f, env, args[r],
                                            depth + 1)
            j += 1
        return out


def check_detflow(path, code, funcs, waived, findings):
    if not path_in(path, DETERMINISTIC_DIRS):
        return
    for idx, tok in enumerate(code):
        if tok.kind != "id" or tok.spelling not in UNORDERED_CONTAINERS:
            continue
        # `#include <unordered_map>` lexes as include '<' name '>'.
        if (idx >= 2 and code[idx - 1].spelling == "<" and
                code[idx - 2].spelling == "include"):
            continue
        if is_waived(waived, RULES["R9"], tok.line):
            continue
        findings.append(Finding(
            path, tok.line, "R9",
            f"std::{tok.spelling} in a deterministic directory: bucket "
            f"iteration order depends on the hash function, insertion "
            f"history, and stdlib version; use std::map/std::set, a "
            f"sorted vector, or a dense index (waivable only for "
            f"provably non-iterated lookup tables)"))
    _TaintPass(path, code, funcs, collect_unordered_names(code),
               waived).run(findings)


# --------------------------------------------------------------------
# R10 ansmet-checkpure: side effects inside ANSMET_DCHECK arguments
# --------------------------------------------------------------------

def check_dcheck_pure(path, code, waived, findings):
    for idx, tok in enumerate(code):
        if (tok.kind != "id" or
                not tok.spelling.startswith(_DCHECK_PREFIX) or
                _tok_at(code, idx + 1) != "("):
            continue
        end = skip_balanced(code, idx + 1, "(", ")")
        if end is None:
            continue
        macro = tok.spelling
        j = idx + 2
        while j < end - 1:
            t = code[j]
            s = t.spelling
            what = None
            step = 1
            if s in ("+", "-") and _tok_at(code, j + 1) == s:
                what = f"'{s}{s}'"
                step = 2
            elif (s == "=" and _tok_at(code, j + 1) not in ("=", "]") and
                  _tok_at(code, j - 1) not in ("=", "<", ">", "!", "[",
                                               "operator")):
                what = ("compound assignment"
                        if _tok_at(code, j - 1) in "+-*/%&|^"
                        else "assignment")
            elif (t.kind == "id" and s in _MUTATING_METHODS and
                  _tok_at(code, j + 1) == "(" and
                  (_tok_at(code, j - 1) == "." or
                   (_tok_at(code, j - 1) == ">" and
                    _tok_at(code, j - 2) == "-"))):
                what = f"mutating call .{s}()"
            if what is not None and \
                    not is_waived(waived, RULES["R10"], t.line):
                findings.append(Finding(
                    path, t.line, "R10",
                    f"side effect ({what}) inside {macro}(): audit-off "
                    f"builds skip the check's arguments entirely "
                    f"(common/check.h), so the effect silently "
                    f"disappears in release runs; hoist it out of the "
                    f"check"))
            j += step


# --------------------------------------------------------------------
# R11 ansmet-mustuse: discarded results of must-check calls
# --------------------------------------------------------------------

def _statement_discards(code, j):
    """code[j] heads a must-check call whose value reaches an
    expression-statement boundary; walk the receiver chain backwards
    to decide whether the statement truly drops it (True) or this is a
    declaration / consumed / (void)-acknowledged context (False)."""
    while True:
        if j == 0:
            return True
        p = code[j - 1]
        s = p.spelling
        # Step over a chain separator onto the receiver token.
        recv = None
        if s == ".":
            recv = j - 2
        elif s == ">" and j >= 2 and code[j - 2].spelling == "-":
            recv = j - 3
        elif s == ":" and j >= 2 and code[j - 2].spelling == ":":
            recv = j - 3
        if recv is not None:
            if recv < 0:
                return True
            rt = code[recv]
            if rt.kind in ("id", "kw"):
                j = recv
                continue
            if rt.spelling == ")":
                op = _match_backward(code, recv, "(", ")")
                if op is None:
                    return False
                # Call-result receiver: get(...).tryPush(...).
                if op > 0 and code[op - 1].kind in ("id", "kw"):
                    j = op - 1
                else:
                    j = op  # parenthesized-expression receiver
                continue
            if rt.spelling == "]":
                op = _match_backward(code, recv, "[", "]")
                if op is None:
                    return False
                j = op
                continue
            return False
        if p.kind in ("id", "kw"):
            if s in _CONSUME_KEYWORDS:
                return False
            if s in _STMT_KEYWORDS:
                return True
            return False  # `Type name(` — a declaration, not a call
        if s == "]":
            op = _match_backward(code, j - 1, "[", "]")
            if op is None:
                return False
            j = op  # receiver subscript: arr[i].tryPush(...)
            continue
        if s == ")":
            op = _match_backward(code, j - 1, "(", ")")
            if op is None:
                return False
            inner = code[op + 1:j - 1]
            if len(inner) == 1 and inner[0].spelling == "void":
                return False  # (void)x.f(...) — acknowledged discard
            before = code[op - 1].spelling if op > 0 else ""
            if before in ("if", "while", "for", "switch"):
                return True  # un-braced control body: the call IS
                #              the whole statement
            if op > 0 and code[op - 1].kind in ("id", "kw"):
                j = op - 1  # receiver is a call: get(...).tryPush(...)
                continue
            return False
        if s in (";", "{", "}", ":"):
            return True  # statement boundary reached: value dropped
        return False  # some operator consumed the value


def check_must_use(path, code, waived, findings):
    n = len(code)
    for idx, tok in enumerate(code):
        if (tok.kind != "id" or tok.spelling not in MUST_CHECK or
                _tok_at(code, idx + 1) != "("):
            continue
        end = skip_balanced(code, idx + 1, "(", ")")
        if end is None or end >= n or code[end].spelling != ";":
            continue  # consumed by the surrounding expression
        if not _statement_discards(code, idx):
            continue
        if is_waived(waived, RULES["R11"], tok.line):
            continue
        findings.append(Finding(
            path, tok.line, "R11",
            f"discarded result of {tok.spelling}(): "
            f"{MUST_CHECK[tok.spelling]}; branch on it, store it, or "
            f"make the discard explicit with (void)"))


# --------------------------------------------------------------------
# R12 ansmet-cbblock: blocking inside deferred callbacks
# --------------------------------------------------------------------

def _local_lock_trans(funcs):
    """File-local transitive may-acquire sets, propagated with the same
    call-resolution discipline as the global lock-order pass but
    restricted to this file's definitions (keeps per-file results
    cacheable; cross-file blocking is deliberately unresolved)."""
    by_last = {}
    for f in funcs:
        by_last.setdefault(f.name.split("::")[-1], []).append(f)

    def resolve(callee, qual, caller_owner):
        out = []
        for g in by_last.get(callee, ()):
            if qual is not None:
                if g.owner == qual:
                    out.append(g)
            elif g.owner is None or g.owner == caller_owner:
                out.append(g)
        return out

    trans = {id(f): {a[0] for a in f.acquisitions} for f in funcs}
    for _ in range(16):
        changed = False
        for f in funcs:
            for callee, qual, _, _ in f.calls:
                for g in resolve(callee, qual, f.owner):
                    add = trans[id(g)] - trans[id(f)]
                    if add:
                        trans[id(f)] |= add
                        changed = True
        if not changed:
            break
    return trans, resolve


def _scan_callback_body(path, code, lo, hi, what, owner, trans, resolve,
                        waived, findings):
    j = lo
    while j < hi:
        t = code[j]
        s = t.spelling
        if (t.kind == "id" and s in LOCK_CLASSES and j + 2 < hi and
                code[j + 1].kind == "id" and
                _tok_at(code, j + 2) in ("(", "{")):
            if not is_waived(waived, RULES["R12"], t.line):
                findings.append(Finding(
                    path, t.line, "R12",
                    f"{s} acquired inside a deferred {what} callback: "
                    f"the simulation thread must never block in an "
                    f"event; read through atomics or the seqlock "
                    f"pattern instead"))
            j += 3
            continue
        if (t.kind == "id" and s in _BLOCKING_WAITS and
                _tok_at(code, j + 1) == "(" and
                (_tok_at(code, j - 1) == "." or
                 (_tok_at(code, j - 1) == ">" and
                  _tok_at(code, j - 2) == "-"))):
            if not is_waived(waived, RULES["R12"], t.line):
                findings.append(Finding(
                    path, t.line, "R12",
                    f".{s}() parks the simulation thread inside a "
                    f"deferred {what} callback; events must complete "
                    f"without blocking"))
            j += 1
            continue
        if (t.kind == "id" and s not in _CONTROL and
                _tok_at(code, j + 1) == "("):
            prv = _tok_at(code, j - 1)
            member = prv == "." or (prv == ">" and
                                    _tok_at(code, j - 2) == "-")
            this_call = (member and prv == ">" and
                         _tok_at(code, j - 3) == "this")
            qual = None
            if (prv == ":" and _tok_at(code, j - 2) == ":" and
                    j >= 3 and code[j - 3].kind == "id" and
                    code[j - 3].spelling != "std"):
                qual = code[j - 3].spelling
            if not member or this_call:
                for g in resolve(s, qual, owner):
                    locks = trans.get(id(g), set())
                    if locks and not is_waived(waived, RULES["R12"],
                                               t.line):
                        findings.append(Finding(
                            path, t.line, "R12",
                            f"call to {g.name}() inside a deferred "
                            f"{what} callback acquires "
                            f"{sorted(locks)[0]} (file-local "
                            f"analysis): events must complete without "
                            f"blocking"))
                        break
        j += 1


def check_cb_block(path, code, funcs, waived, findings):
    if not path_in(path, SIM_HOT_DIRS):
        return
    trans, resolve = _local_lock_trans(funcs)

    def owner_at(k):
        for f in funcs:
            lo, hi = f.body
            if lo <= k < hi:
                return f.owner
        return None

    for lo, hi, what in _callback_sink_ranges(code):
        j = lo
        while j < hi:
            t = code[j]
            if t.spelling != "[":
                j += 1
                continue
            prev = code[j - 1] if j > 0 else None
            if prev is not None and (prev.kind in ("id", "literal") or
                                     prev.spelling in (")", "]")):
                j += 1  # subscript, not a lambda introducer
                continue
            cap_end = skip_balanced(code, j, "[", "]")
            if cap_end is None:
                j += 1
                continue
            k = cap_end
            if _tok_at(code, k) == "(":
                k = skip_balanced(code, k, "(", ")") or hi
            while k < hi and code[k].spelling not in ("{", ",", ";"):
                k += 1  # mutable / noexcept / -> Ret before the body
            if k >= hi or code[k].spelling != "{":
                j = cap_end
                continue
            body_end = skip_balanced(code, k, "{", "}")
            if body_end is None or body_end > hi + 1:
                body_end = hi
            _scan_callback_body(path, code, k + 1, body_end - 1, what,
                                owner_at(j), trans, resolve, waived,
                                findings)
            j = body_end


# --------------------------------------------------------------------
# Per-file rule driver
# --------------------------------------------------------------------

def lint_file(path, repo_root, tokens):
    """Run every per-file rule; returns (findings, FuncInfos, waived)
    so the driver can finish with the cross-file lock-order pass."""
    rel = os.path.relpath(path, repo_root)
    findings = []
    waived = suppressed_lines(tokens)
    code = code_tokens(tokens)
    funcs = parse_lock_functions(rel, tokens, code)
    check_determinism(rel, tokens, waived, findings)
    check_raw_new_delete(rel, tokens, waived, findings)
    check_nolint_justified(rel, tokens, findings)
    check_raw_sync(rel, tokens, waived, findings)
    check_event_capture(rel, tokens, waived, findings)
    check_tick_units(rel, tokens, waived, findings)
    check_dangle_capture(rel, tokens, waived, findings)
    check_detflow(rel, code, funcs, waived, findings)
    check_dcheck_pure(rel, code, waived, findings)
    check_must_use(rel, code, waived, findings)
    check_cb_block(rel, code, funcs, waived, findings)
    return findings, funcs, waived


# --------------------------------------------------------------------
# SARIF output
# --------------------------------------------------------------------

def sarif_report(findings, engine):
    """SARIF 2.1.0 log for code-scanning upload; same findings, same
    order as the text report."""
    rules = [{
        "id": f"{rid}/{name}",
        "name": name,
        "shortDescription": {"text": name},
        "defaultConfiguration": {"level": "error"},
    } for rid, name in RULES.items()]
    results = [{
        "ruleId": f"{f.rule}/{RULES[f.rule]}",
        "ruleIndex": list(RULES).index(f.rule),
        "level": "error",
        "message": {"text": f.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": f.path.replace(os.sep, "/"),
                },
                "region": {"startLine": max(1, f.line)},
            },
        }],
    } for f in findings]
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "ansmet_lint",
                "informationUri":
                    "https://github.com/ansmet/ansmet"
                    "/blob/main/tools/ansmet_lint.py",
                "version": "1.0.0",
                "rules": rules,
            }},
            "columnKind": "utf16CodeUnits",
            "properties": {"engine": engine},
            "results": results,
        }],
    }


# --------------------------------------------------------------------
# Per-file result cache
# --------------------------------------------------------------------

_FINGERPRINT = None


def _ruleset_fingerprint():
    """Hash of this script itself: any rule change invalidates every
    cached entry."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import hashlib
        try:
            with open(os.path.abspath(__file__), "rb") as f:
                _FINGERPRINT = hashlib.sha256(f.read()).hexdigest()
        except OSError:
            _FINGERPRINT = "unknown"
    return _FINGERPRINT


def _cache_path(repo_root, rel, text, engine):
    import hashlib
    h = hashlib.sha256()
    for part in (rel.replace(os.sep, "/"), engine,
                 _ruleset_fingerprint()):
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    h.update(text.encode("utf-8", "replace"))
    return os.path.join(repo_root, ".ansmet_cache", "lint",
                        h.hexdigest()[:40] + ".json")


def _serialize_entry(findings, funcs, waived):
    return {
        "findings": [[f.line, f.rule, f.message] for f in findings],
        "funcs": [{
            "name": g.name,
            "owner": g.owner,
            "requires": sorted(g.requires),
            "acquisitions": [[lk, ln, sorted(held)]
                             for lk, ln, held in g.acquisitions],
            "calls": [[c, q, ln, sorted(held)]
                      for c, q, ln, held in g.calls],
        } for g in funcs],
        "waived": {k: sorted(v) for k, v in waived.items()},
    }


def _deserialize_entry(rel, entry):
    findings = [Finding(rel, ln, rule, msg)
                for ln, rule, msg in entry["findings"]]
    funcs = []
    for d in entry["funcs"]:
        g = FuncInfo(d["name"], d["owner"], rel)
        g.requires = set(d["requires"])
        g.acquisitions = [(lk, ln, frozenset(held))
                          for lk, ln, held in d["acquisitions"]]
        g.calls = [(c, q, ln, frozenset(held))
                   for c, q, ln, held in d["calls"]]
        funcs.append(g)
    waived = {k: set(v) for k, v in entry["waived"].items()}
    return findings, funcs, waived


def _cache_load(cpath):
    try:
        with open(cpath, encoding="utf-8") as f:
            entry = json.load(f)
        if not all(k in entry for k in ("findings", "funcs", "waived")):
            return None
        return entry
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _cache_store(cpath, entry):
    try:
        os.makedirs(os.path.dirname(cpath), exist_ok=True)
        tmp = f"{cpath}.tmp{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(entry, f)
        os.replace(tmp, cpath)
    except OSError:
        pass  # caching is best-effort; never fail the lint for it


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def git_changed_files(repo_root):
    """Absolute paths of files changed vs HEAD plus untracked files,
    or None when git is unavailable."""
    import subprocess
    names = set()
    for args in (["diff", "--name-only", "HEAD"],
                 ["ls-files", "--others", "--exclude-standard"]):
        try:
            r = subprocess.run(["git", "-C", repo_root] + args,
                               capture_output=True, text=True,
                               timeout=30)
        except (OSError, subprocess.SubprocessError):
            return None
        if r.returncode != 0:
            return None
        names.update(ln.strip() for ln in r.stdout.splitlines()
                     if ln.strip())
    return {os.path.abspath(os.path.join(repo_root, nm))
            for nm in names}


def collect_files(repo_root, paths):
    if paths:
        out = []
        for p in paths:
            if os.path.isdir(p):
                for dirpath, _, names in os.walk(p):
                    out.extend(os.path.join(dirpath, n) for n in names
                               if n.endswith((".h", ".cc")))
            else:
                out.append(p)
        return sorted(out)
    src = os.path.join(repo_root, "src")
    out = []
    for dirpath, _, names in os.walk(src):
        out.extend(os.path.join(dirpath, n) for n in names
                   if n.endswith((".h", ".cc")))
    return sorted(out)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="ANSMET determinism/style linter (rules R1-R12)")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: <repo>/src)")
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--build-dir", default=None,
                    help="build tree with compile_commands.json "
                         "(libclang engine only; default: <repo>/build)")
    ap.add_argument("--engine", choices=("auto", "libclang", "lexical"),
                    default="auto",
                    help="auto: libclang when importable, else the "
                         "built-in lexer; libclang: require it and "
                         "SKIP (exit 0) when absent")
    ap.add_argument("--format", choices=("text", "sarif"),
                    default="text",
                    help="report format (sarif = SARIF 2.1.0 for "
                         "code-scanning upload)")
    ap.add_argument("--output", default=None,
                    help="write the report to FILE instead of stdout")
    ap.add_argument("--no-cache", action="store_true",
                    help="disable the per-file result cache under "
                         "<repo>/.ansmet_cache/lint/")
    ap.add_argument("--changed-only", action="store_true",
                    help="lint only files changed vs git HEAD (plus "
                         "untracked); the cross-file lock-order pass "
                         "then sees only those files — CI runs the "
                         "full scan")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, name in RULES.items():
            print(f"{rule}  {name}")
        return 0

    repo_root = os.path.abspath(
        args.repo or
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    build_dir = args.build_dir or os.path.join(repo_root, "build")

    cindex = None
    if args.engine in ("auto", "libclang"):
        cindex = try_import_libclang()
        if cindex is None:
            if args.engine == "libclang":
                print("ansmet_lint: libclang python bindings not found;"
                      " SKIPPING AST engine (install python3-clang)",
                      file=sys.stderr)
                return 0
            print("ansmet_lint: libclang python bindings not found; "
                  "falling back to the built-in lexer (lexical "
                  "findings are a superset of the AST engine's)",
                  file=sys.stderr)

    engine = "libclang" if cindex is not None else "lexical"
    files = collect_files(repo_root, args.paths)
    if args.changed_only:
        changed = git_changed_files(repo_root)
        if changed is None:
            print("ansmet_lint: git diff unavailable; linting "
                  "everything", file=sys.stderr)
        else:
            files = [p for p in files
                     if os.path.abspath(p) in changed]
            if not files:
                print(f"ansmet_lint: no changed files "
                      f"({engine} engine)")
                return 0
    if not files:
        print("ansmet_lint: no input files", file=sys.stderr)
        return 2

    findings = []
    lock_facts = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"ansmet_lint: cannot read {path}: {e}",
                  file=sys.stderr)
            return 2
        rel = os.path.relpath(path, repo_root)
        cpath = None
        if not args.no_cache:
            cpath = _cache_path(repo_root, rel, text, engine)
            entry = _cache_load(cpath)
            if entry is not None:
                cached, funcs, waived = _deserialize_entry(rel, entry)
                findings.extend(cached)
                lock_facts.append((rel, funcs, waived))
                continue
        tu = None
        if cindex is not None:
            try:
                tu = clang_parse(cindex, path, text,
                                 compile_args_for(path, build_dir))
                tokens = clang_tokens(cindex, tu, path)
            except Exception as e:
                print(f"ansmet_lint: libclang failed on {path} ({e}); "
                      f"using the built-in lexer", file=sys.stderr)
                tu = None
                tokens = lex_tokens(text)
        else:
            tokens = lex_tokens(text)
        file_findings, funcs, waived = lint_file(path, repo_root,
                                                 tokens)
        if tu is not None:
            file_findings = ast_refine(cindex, tu, file_findings)
        findings.extend(file_findings)
        lock_facts.append((rel, funcs, waived))
        if cpath is not None:
            _cache_store(cpath, _serialize_entry(file_findings, funcs,
                                                 waived))
    check_lock_order(lock_facts, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    out = open(args.output, "w", encoding="utf-8") \
        if args.output else sys.stdout
    try:
        if args.format == "sarif":
            json.dump(sarif_report(findings, engine), out, indent=2)
            out.write("\n")
        else:
            for finding in findings:
                print(finding.render(), file=out)
            if not findings:
                print(f"ansmet_lint: clean ({len(files)} files, "
                      f"{engine} engine)", file=out)
    finally:
        if args.output:
            out.close()
    if findings:
        print(f"ansmet_lint: {len(findings)} finding(s) over "
              f"{len(files)} files ({engine} engine)", file=sys.stderr)
        return 1
    if args.format == "sarif":
        print(f"ansmet_lint: clean ({len(files)} files, "
              f"{engine} engine)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
