#!/usr/bin/env python3
"""ansmet_lint: project-specific determinism and style linter.

ANSMET's figures depend on bitwise-deterministic replay, and its
locking contracts are enforced at compile time through the annotated
wrappers in src/common/sync.h. This linter statically proves the two
conventions that neither the compiler nor clang-tidy checks:

  R1  ansmet-determinism   No nondeterminism source in the simulator-
                           deterministic directories (src/sim, src/ndp,
                           src/dram, src/et, src/anns): std::rand and
                           friends, wall-clock time, and std random
                           engines are banned; common::Prng is the only
                           sanctioned randomness.
  R2  ansmet-rawnew        No raw `new` / `delete` in src/ (smart
                           pointers and containers own everything);
                           `= delete`d functions and placement forms
                           are exempt.
  R3  ansmet-nolint        Every NOLINT / NOLINTNEXTLINE / NOLINTBEGIN
                           must carry a written justification after the
                           check list (": why" — keeps suppressions
                           honest).
  R4  ansmet-rawsync       No direct std::mutex / std::shared_mutex /
                           std::condition_variable (or std lock RAII
                           over them) outside src/common/sync.h — the
                           annotated wrappers are mandatory so Clang's
                           thread-safety analysis sees every lock.
  R5  ansmet-eventcapture  No std::function inside the arguments of a
                           schedule()/scheduleIn() call in the
                           simulator-hot directories (src/sim, src/ndp,
                           src/dram, src/cpu, src/core, src/cache):
                           event callbacks are sim::EventQueue::Callback
                           (an InlineFunction with a compile-enforced
                           capture budget); std::function would put its
                           capture back on the heap per event.

Suppression: a finding is waived by `// NOLINT(<rule>): reason` on the
same line or `// NOLINTNEXTLINE(<rule>): reason` on the line above,
using the rule names in the middle column. R3 itself validates those
comments, so a suppression can never be silent.

Engines: with the libclang Python bindings installed (python3-clang)
the file is tokenized by clang itself, driven by the build tree's
compile_commands.json; without them a built-in lexer produces the same
token stream (the rules are token-level, so findings are identical).
`--engine libclang` makes libclang mandatory and SKIPS with exit 0
when it is absent, mirroring tools/run_tidy.sh's behavior when
clang-tidy is missing.

Exit status: 0 clean (or skipped), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------

DETERMINISTIC_DIRS = ("src/sim", "src/ndp", "src/dram", "src/et",
                      "src/anns")

# Identifier tokens banned by R1 inside the deterministic directories.
BANNED_RANDOM = {
    "rand": "std::rand is seed-global and unordered under threading",
    "srand": "std::srand mutates global state",
    "rand_r": "use common::Prng streams instead",
    "random": "POSIX random() is seed-global",
    "drand48": "use common::Prng streams instead",
    "lrand48": "use common::Prng streams instead",
    "mrand48": "use common::Prng streams instead",
    "random_device": "std::random_device is nondeterministic by design",
    "mt19937": "std engines drift across stdlibs; use common::Prng",
    "mt19937_64": "std engines drift across stdlibs; use common::Prng",
    "minstd_rand": "std engines drift across stdlibs; use common::Prng",
    "default_random_engine": "implementation-defined; use common::Prng",
}
BANNED_CLOCK = {
    "system_clock": "wall-clock time must not feed simulated output",
    "high_resolution_clock": "wall-clock time must not feed simulated "
                             "output",
    "steady_clock": "host timing must not feed simulated output",
    "clock_gettime": "host timing must not feed simulated output",
    "gettimeofday": "host timing must not feed simulated output",
}

# R4: raw sync vocabulary banned outside the wrapper header.
BANNED_SYNC = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_timed_mutex", "condition_variable",
    "condition_variable_any", "lock_guard", "unique_lock", "shared_lock",
    "scoped_lock",
}
SYNC_EXEMPT_SUFFIX = os.path.join("src", "common", "sync.h")

# R5: directories whose schedule()/scheduleIn() calls are hot enough
# that a std::function argument (heap-allocating capture) is a bug.
SIM_HOT_DIRS = ("src/sim", "src/ndp", "src/dram", "src/cpu", "src/core",
                "src/cache")
SCHEDULE_CALLS = ("schedule", "scheduleIn")

RULES = {
    "R1": "ansmet-determinism",
    "R2": "ansmet-rawnew",
    "R3": "ansmet-nolint",
    "R4": "ansmet-rawsync",
    "R5": "ansmet-eventcapture",
}

NOLINT_RE = re.compile(
    r"NOLINT(NEXTLINE|BEGIN|END)?(\(([^)]*)\))?(.*)", re.DOTALL)


class Token:
    __slots__ = ("kind", "spelling", "line")

    def __init__(self, kind, spelling, line):
        self.kind = kind  # 'id', 'punct', 'comment', 'literal', 'kw'
        self.spelling = spelling
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.spelling!r},{self.line})"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return (f"{self.path}:{self.line}: [{self.rule}/"
                f"{RULES[self.rule]}] {self.message}")


# --------------------------------------------------------------------
# Lexical engine: a small C++ scanner producing the unified tokens.
# --------------------------------------------------------------------

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_KEYWORDS = {"new", "delete", "operator"}


def lex_tokens(text):
    """Tokenize C++ source: identifiers, punctuation, comments,
    literals. Strings/chars collapse to one literal token so banned
    names inside them never match; comments are kept for R3."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            tokens.append(Token("comment", text[i:j], line))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            body = text[i:j + 2]
            tokens.append(Token("comment", body, line))
            line += body.count("\n")
            i = j + 2
        elif c == '"':
            if text.startswith('R"', i - 1) and i >= 1:
                pass  # handled via the R branch below
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("literal", text[i:j + 1], line))
            line += text.count("\n", i, j + 1)
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("literal", text[i:j + 1], line))
            i = j + 1
        elif c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            spelling = text[i:j]
            # Raw string literal: R"delim( ... )delim"
            if spelling.endswith("R") and j < n and text[j] == '"':
                m = re.match(r'R"([^()\\ ]*)\(', text[j - 1:])
                if m:
                    end = text.find(f"){m.group(1)}\"", j)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    tokens.append(Token("literal", text[i:end], line))
                    line += text.count("\n", i, end)
                    i = end
                    continue
            kind = "kw" if spelling in _KEYWORDS else "id"
            tokens.append(Token(kind, spelling, line))
            i = j
        elif c.isdigit():
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".+-'"
                             and text[j - 1] in "eEpP'"):
                j += 1
            tokens.append(Token("literal", text[i:j], line))
            i = j
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


# --------------------------------------------------------------------
# libclang engine: same token stream, produced by clang's lexer.
# --------------------------------------------------------------------

def try_import_libclang():
    if os.environ.get("ANSMET_LINT_FORCE_NO_LIBCLANG"):
        return None
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()  # verifies libclang.so actually loads
        return cindex
    except Exception:
        return None


def compile_args_for(path, compdb_dir):
    """Extract the -I/-D/-std args recorded for path (or any TU) from
    compile_commands.json, so clang lexes under the project config."""
    cc_path = os.path.join(compdb_dir or "", "compile_commands.json")
    if not compdb_dir or not os.path.isfile(cc_path):
        return ["-std=c++20"]
    try:
        with open(cc_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, json.JSONDecodeError):
        return ["-std=c++20"]
    want = os.path.abspath(path)
    fallback = None
    for entry in db:
        args = entry.get("command", "").split()[1:]
        keep = [a for a in args
                if a.startswith(("-I", "-D", "-std=", "-isystem"))]
        if os.path.abspath(entry.get("file", "")) == want:
            return keep or ["-std=c++20"]
        fallback = fallback or keep
    return fallback or ["-std=c++20"]


def clang_tokens(cindex, path, text, args):
    tu = cindex.TranslationUnit.from_source(
        path, args=args, unsaved_files=[(path, text)],
        options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    kinds = cindex.TokenKind
    out = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.location.file and tok.location.file.name != path:
            continue
        spelling = tok.spelling
        line = tok.location.line
        if tok.kind == kinds.COMMENT:
            out.append(Token("comment", spelling, line))
        elif tok.kind == kinds.LITERAL:
            out.append(Token("literal", spelling, line))
        elif tok.kind == kinds.IDENTIFIER:
            out.append(Token("id", spelling, line))
        elif tok.kind == kinds.KEYWORD:
            out.append(Token("kw" if spelling in _KEYWORDS else "id",
                             spelling, line))
        else:  # punctuation: split multi-char operators into chars
            for ch in spelling:
                out.append(Token("punct", ch, line))
    return out


# --------------------------------------------------------------------
# Suppression handling
# --------------------------------------------------------------------

def suppressed_lines(tokens):
    """Map rule-name -> set of line numbers waived by NOLINT comments."""
    waived = {}
    for tok in tokens:
        if tok.kind != "comment" or "NOLINT" not in tok.spelling:
            continue
        m = NOLINT_RE.search(tok.spelling)
        if not m:
            continue
        variant = m.group(1) or ""
        names = [s.strip() for s in (m.group(3) or "").split(",")
                 if s.strip()]
        last_line = tok.line + tok.spelling.count("\n")
        target = last_line + 1 if variant == "NEXTLINE" else tok.line
        for name in names or ["*"]:
            waived.setdefault(name, set()).add(target)
    return waived


def is_waived(waived, rule_name, line):
    for name in (rule_name, "*"):
        if line in waived.get(name, set()):
            return True
    return False


# --------------------------------------------------------------------
# Rule implementations (token-level; shared by both engines)
# --------------------------------------------------------------------

def path_in(path, prefixes):
    rel = path.replace(os.sep, "/")
    return any(f"/{p}/" in f"/{rel}/" or rel.startswith(p + "/")
               for p in prefixes)


def check_determinism(path, tokens, waived, findings):
    if not path_in(path, DETERMINISTIC_DIRS):
        return
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    for idx, tok in enumerate(code):
        if tok.kind != "id":
            continue
        reason = None
        name = tok.spelling
        if name in BANNED_RANDOM:
            reason = BANNED_RANDOM[name]
        elif name in BANNED_CLOCK:
            reason = BANNED_CLOCK[name]
        elif name == "time":
            # Only the call `time(...)` is banned; `time` as a field or
            # parameter name stays legal.
            nxt = code[idx + 1] if idx + 1 < len(code) else None
            prv = code[idx - 1] if idx > 0 else None
            called = nxt is not None and nxt.spelling == "("
            member = prv is not None and prv.spelling in (".", ">")
            if called and not member:
                reason = "wall-clock time() must not feed simulated " \
                         "output"
        if reason and not is_waived(waived, RULES["R1"], tok.line):
            findings.append(Finding(
                path, tok.line, "R1",
                f"'{name}' in a deterministic directory: {reason}; "
                f"common::Prng is the only sanctioned randomness"))


def check_raw_new_delete(path, tokens, waived, findings):
    code = [t for t in tokens if t.kind in ("id", "kw", "punct",
                                            "literal")]
    for idx, tok in enumerate(code):
        if tok.kind != "kw" or tok.spelling not in ("new", "delete"):
            continue
        prv = code[idx - 1] if idx > 0 else None
        nxt = code[idx + 1] if idx + 1 < len(code) else None
        # `#include <new>` lexes the header name as the keyword.
        if (prv is not None and prv.spelling == "<" and
                nxt is not None and nxt.spelling == ">"):
            continue
        if tok.spelling == "delete":
            # `= delete` (deleted functions) and `operator delete`.
            if prv is not None and prv.spelling in ("=", "operator"):
                continue
        else:
            # Placement new `new (addr) T` is allowed: it constructs
            # into storage owned elsewhere. `operator new` decls too.
            if prv is not None and prv.spelling == "operator":
                continue
            if nxt is not None and nxt.spelling == "(":
                continue
        if is_waived(waived, RULES["R2"], tok.line):
            continue
        findings.append(Finding(
            path, tok.line, "R2",
            f"raw '{tok.spelling}': ownership must go through smart "
            f"pointers or containers"))


def check_nolint_justified(path, tokens, findings):
    for tok in tokens:
        if tok.kind != "comment":
            continue
        for m in re.finditer(r"NOLINT\w*", tok.spelling):
            sub = tok.spelling[m.start():]
            mm = NOLINT_RE.match(sub)
            variant = mm.group(1) or ""
            if variant == "END":
                continue  # the BEGIN marker carries the justification
            trailing = (mm.group(4) or "").strip()
            # Strip comment furniture, then require real words.
            trailing = re.sub(r"[*/\s:;,-]+", " ", trailing).strip()
            line = tok.line + tok.spelling.count("\n", 0, m.start())
            if len(trailing) < 8:
                findings.append(Finding(
                    path, line, "R3",
                    "NOLINT without a written justification; append "
                    "': <why this suppression is sound>'"))
            if not mm.group(3):
                findings.append(Finding(
                    path, line, "R3",
                    "blanket NOLINT; name the suppressed check(s), "
                    "e.g. NOLINT(concurrency-mt-unsafe)"))


def check_raw_sync(path, tokens, waived, findings):
    if path.replace(os.sep, "/").endswith("common/sync.h"):
        return
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    for idx, tok in enumerate(code):
        if tok.kind != "id" or tok.spelling not in BANNED_SYNC:
            continue
        # Require the std:: qualification: `std` `:` `:` `mutex`.
        if idx < 3:
            continue
        if not (code[idx - 1].spelling == ":" and
                code[idx - 2].spelling == ":" and
                code[idx - 3].spelling == "std"):
            continue
        if is_waived(waived, RULES["R4"], tok.line):
            continue
        findings.append(Finding(
            path, tok.line, "R4",
            f"raw std::{tok.spelling}: use the annotated wrappers in "
            f"common/sync.h (Mutex/SharedMutex/CondVar + MutexLock/"
            f"ReaderLock/WriterLock) so thread-safety analysis sees "
            f"the contract"))


def check_event_capture(path, tokens, waived, findings):
    if not path_in(path, SIM_HOT_DIRS):
        return
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    n = len(code)
    for idx, tok in enumerate(code):
        if tok.kind != "id" or tok.spelling not in SCHEDULE_CALLS:
            continue
        if idx + 1 >= n or code[idx + 1].spelling != "(":
            continue
        # Walk the balanced argument list of the call; any qualified
        # `std :: function` token run inside it is a finding.
        depth = 0
        j = idx + 1
        while j < n:
            s = code[j].spelling
            if s == "(":
                depth += 1
            elif s == ")":
                depth -= 1
                if depth == 0:
                    break
            elif (s == "function" and code[j].kind == "id" and j >= 3 and
                  code[j - 1].spelling == ":" and
                  code[j - 2].spelling == ":" and
                  code[j - 3].spelling == "std"):
                if not is_waived(waived, RULES["R5"], code[j].line):
                    findings.append(Finding(
                        path, code[j].line, "R5",
                        "std::function inside a schedule()/scheduleIn() "
                        "argument: event callbacks are inline "
                        "(sim::EventQueue::Callback); a std::function "
                        "capture heap-allocates on the hot path"))
            j += 1


def lint_file(path, repo_root, tokens):
    rel = os.path.relpath(path, repo_root)
    findings = []
    waived = suppressed_lines(tokens)
    check_determinism(rel, tokens, waived, findings)
    check_raw_new_delete(rel, tokens, waived, findings)
    check_nolint_justified(rel, tokens, findings)
    check_raw_sync(rel, tokens, waived, findings)
    check_event_capture(rel, tokens, waived, findings)
    return findings


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def collect_files(repo_root, paths):
    if paths:
        out = []
        for p in paths:
            if os.path.isdir(p):
                for dirpath, _, names in os.walk(p):
                    out.extend(os.path.join(dirpath, n) for n in names
                               if n.endswith((".h", ".cc")))
            else:
                out.append(p)
        return sorted(out)
    src = os.path.join(repo_root, "src")
    out = []
    for dirpath, _, names in os.walk(src):
        out.extend(os.path.join(dirpath, n) for n in names
                   if n.endswith((".h", ".cc")))
    return sorted(out)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="ANSMET determinism/style linter (rules R1-R5)")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: <repo>/src)")
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--build-dir", default=None,
                    help="build tree with compile_commands.json "
                         "(libclang engine only; default: <repo>/build)")
    ap.add_argument("--engine", choices=("auto", "libclang", "lexical"),
                    default="auto",
                    help="auto: libclang when importable, else the "
                         "built-in lexer; libclang: require it and "
                         "SKIP (exit 0) when absent")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, name in RULES.items():
            print(f"{rule}  {name}")
        return 0

    repo_root = os.path.abspath(
        args.repo or
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    build_dir = args.build_dir or os.path.join(repo_root, "build")

    cindex = None
    if args.engine in ("auto", "libclang"):
        cindex = try_import_libclang()
        if cindex is None:
            if args.engine == "libclang":
                print("ansmet_lint: libclang python bindings not found;"
                      " SKIPPING AST engine (install python3-clang)",
                      file=sys.stderr)
                return 0
            print("ansmet_lint: libclang python bindings not found; "
                  "falling back to the built-in lexer (findings are "
                  "identical for rules R1-R5)", file=sys.stderr)

    files = collect_files(repo_root, args.paths)
    if not files:
        print("ansmet_lint: no input files", file=sys.stderr)
        return 2

    findings = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"ansmet_lint: cannot read {path}: {e}",
                  file=sys.stderr)
            return 2
        if cindex is not None:
            tokens = clang_tokens(cindex, path, text,
                                  compile_args_for(path, build_dir))
        else:
            tokens = lex_tokens(text)
        findings.extend(lint_file(path, repo_root, tokens))

    for finding in findings:
        print(finding.render())
    engine = "libclang" if cindex is not None else "lexical"
    if findings:
        print(f"ansmet_lint: {len(findings)} finding(s) over "
              f"{len(files)} files ({engine} engine)", file=sys.stderr)
        return 1
    print(f"ansmet_lint: clean ({len(files)} files, {engine} engine)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
