#!/usr/bin/env bash
# Run clang-tidy over every translation unit in src/ using the
# checked-in .clang-tidy. Exits non-zero on any finding (the config
# promotes warnings to errors), making this the static-analysis gate
# CI runs.
#
# Usage: tools/run_tidy.sh [build-dir]
#
# The build dir must contain compile_commands.json; the default
# configure exports it (CMAKE_EXPORT_COMPILE_COMMANDS=ON). If no build
# dir exists, one is configured with tests/bench/examples off, which
# needs no GTest/benchmark install.
#
# If clang-tidy is not installed, the gate is SKIPPED with exit 0 so
# the script stays usable in minimal containers; CI installs clang-tidy
# explicitly, so the gate is always live there.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build-tidy"}"

tidy=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
        tidy="$cand"
        break
    fi
done
if [ -z "$tidy" ]; then
    echo "run_tidy: clang-tidy not found; SKIPPING static-analysis gate" >&2
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy: configuring $build_dir for compile_commands.json" >&2
    cmake -B "$build_dir" -S "$repo_root" \
        -DANSMET_BUILD_TESTS=OFF -DANSMET_BUILD_BENCH=OFF \
        -DANSMET_BUILD_EXAMPLES=OFF >/dev/null || exit 1
fi

mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)
echo "run_tidy: $tidy over ${#sources[@]} files (config: .clang-tidy)"

status=0
for f in "${sources[@]}"; do
    if ! "$tidy" -p "$build_dir" --quiet "$f"; then
        status=1
        echo "run_tidy: FAILED: $f" >&2
    fi
done

if [ "$status" -eq 0 ]; then
    echo "run_tidy: clean"
else
    echo "run_tidy: findings above must be fixed (WarningsAsErrors: '*')" >&2
fi
exit "$status"
