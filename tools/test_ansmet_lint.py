#!/usr/bin/env python3
"""Unit tests for tools/ansmet_lint.py (stdlib unittest only).

Run directly:  python3 tools/test_ansmet_lint.py
Each rule R1-R12 gets a triggering fixture and a passing fixture, plus
a waiver fixture for the semantic rules, tests for the NOLINT
suppression mechanics, lexer regressions (spliced comments, raw
strings, digit separators), the forced-libclang skip path, the SARIF
and cache/--changed-only driver paths, and a clean run over the real
tree.
"""

import contextlib
import io
import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ansmet_lint  # noqa: E402

REPO = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))


class LintRunMixin:
    """Writes fixture files into a fake repo tree and runs the linter
    over them with the lexical engine (deterministic, no libclang)."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def run_lint(self, *paths, engine="lexical", extra=()):
        out, err = io.StringIO(), io.StringIO()
        argv = ["--engine", engine, "--repo", self.root, *extra,
                *paths]
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = ansmet_lint.main(argv)
        return code, out.getvalue(), err.getvalue()


class R1DeterminismTest(LintRunMixin, unittest.TestCase):
    def test_rand_in_sim_dir_flags(self):
        p = self.write("src/sim/model.cc",
                       "int f() { return rand(); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-determinism", out)
        self.assertIn("'rand'", out)

    def test_std_random_engine_in_anns_flags(self):
        p = self.write("src/anns/build.cc",
                       "#include <random>\n"
                       "std::mt19937 g{42};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("mt19937", out)

    def test_system_clock_in_et_flags(self):
        p = self.write("src/et/policy.cc",
                       "auto t = std::chrono::system_clock::now();\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("system_clock", out)

    def test_time_call_flags_but_time_field_passes(self):
        bad = self.write("src/dram/timing.cc",
                         "long now() { return time(nullptr); }\n")
        code, out, _ = self.run_lint(bad)
        self.assertEqual(code, 1)
        self.assertIn("'time'", out)

        good = self.write("src/dram/timing2.cc",
                          "struct Ev { long time; };\n"
                          "long g(Ev &e) { return e.time; }\n"
                          "long h(Ev *e) { return e->time; }\n")
        code, _, _ = self.run_lint(good)
        self.assertEqual(code, 0)

    def test_same_tokens_outside_deterministic_dirs_pass(self):
        p = self.write("src/common/prng.cc",
                       "// Prng implementation may mention rand() in "
                       "comments and use\n"
                       "// whatever it wants internally.\n"
                       "int seedFromEnv() { return 0; }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_banned_name_in_string_or_comment_passes(self):
        p = self.write("src/sim/doc.cc",
                       '// rand() is banned here.\n'
                       'const char *kMsg = "do not call rand()";\n')
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R2RawNewTest(LintRunMixin, unittest.TestCase):
    def test_raw_new_flags(self):
        p = self.write("src/common/pool.cc",
                       "int *leak() { return new int(7); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-rawnew", out)

    def test_raw_delete_flags(self):
        p = self.write("src/common/pool.cc",
                       "void drop(int *p) { delete p; }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("'delete'", out)

    def test_deleted_function_passes(self):
        p = self.write("src/common/nocopy.h",
                       "struct NoCopy {\n"
                       "    NoCopy(const NoCopy &) = delete;\n"
                       "    NoCopy &operator=(const NoCopy &) = delete;\n"
                       "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_placement_new_passes(self):
        p = self.write("src/common/arena.cc",
                       "#include <new>\n"
                       "int *at(void *mem) { return new (mem) int(0); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_suppressed_with_justification_passes(self):
        p = self.write(
            "src/common/singleton.cc",
            "// NOLINTNEXTLINE(ansmet-rawnew): leaked singleton; "
            "atexit-safe.\n"
            "int *g = new int(1);\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R3NolintJustificationTest(LintRunMixin, unittest.TestCase):
    def test_bare_nolint_flags(self):
        p = self.write("src/common/x.cc",
                       "int v = 0; // NOLINT\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-nolint", out)
        # Bare NOLINT is doubly wrong: no check name, no justification.
        self.assertIn("blanket", out)
        self.assertIn("justification", out)

    def test_named_but_unjustified_flags(self):
        p = self.write(
            "src/common/x.cc",
            "int v = 0; // NOLINT(concurrency-mt-unsafe)\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("justification", out)
        self.assertNotIn("blanket", out)

    def test_named_and_justified_passes(self):
        p = self.write(
            "src/common/x.cc",
            "// NOLINTNEXTLINE(concurrency-mt-unsafe): config knob read "
            "once at startup.\n"
            "const char *e = std::getenv(\"X\");\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_nolintend_needs_no_justification(self):
        p = self.write(
            "src/common/x.cc",
            "// NOLINTBEGIN(some-check): generated table below.\n"
            "int t[3] = {1, 2, 3};\n"
            "// NOLINTEND(some-check)\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R4RawSyncTest(LintRunMixin, unittest.TestCase):
    def test_std_mutex_member_flags(self):
        p = self.write("src/et/cache.h",
                       "#include <mutex>\n"
                       "struct C { std::mutex mu; };\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-rawsync", out)
        self.assertIn("common/sync.h", out)

    def test_std_lock_guard_flags(self):
        p = self.write("src/obs/sink.cc",
                       "#include <mutex>\n"
                       "void f(std::mutex &m) {"
                       " std::lock_guard<std::mutex> lk(m); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("lock_guard", out)

    def test_sync_header_itself_is_exempt(self):
        p = self.write("src/common/sync.h",
                       "#include <mutex>\n"
                       "class Mutex { std::mutex mu_; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_unqualified_identifier_passes(self):
        # A field named `mutex` (no std:: qualification) is fine.
        p = self.write("src/common/y.h",
                       "struct HwDesc { int mutex; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_std_thread_outside_runtime_flags(self):
        p = self.write("src/core/sampler.cc",
                       "#include <thread>\n"
                       "void f() { std::thread t([] {}); t.join(); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-rawsync", out)
        self.assertIn("task runtime", out)

    def test_std_async_outside_runtime_flags(self):
        p = self.write("src/anns/builder.cc",
                       "#include <future>\n"
                       "auto f() { return std::async([] { return 1; }); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("std::async", out)

    def test_std_thread_inside_runtime_is_exempt(self):
        p = self.write("src/common/runtime/worker.h",
                       "#include <thread>\n"
                       "class Worker { std::thread thread_; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_std_thread_in_thread_pool_facade_is_exempt(self):
        p = self.write("src/common/thread_pool.cc",
                       "#include <thread>\n"
                       "unsigned n() "
                       "{ return std::thread::hardware_concurrency(); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_this_thread_passes_everywhere(self):
        p = self.write("src/obs/poll.cc",
                       "#include <thread>\n"
                       "void f() { std::this_thread::yield(); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_std_thread_waiver_with_justification_passes(self):
        p = self.write(
            "src/core/probe.cc",
            "#include <thread>\n"
            "// NOLINTNEXTLINE(ansmet-rawsync): OS probe outlives runtime.\n"
            "std::thread spawnProbe();\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R5EventCaptureTest(LintRunMixin, unittest.TestCase):
    def test_std_function_in_schedule_arg_flags(self):
        p = self.write(
            "src/dram/ctrl.cc",
            "#include <functional>\n"
            "void f(Q &q) {\n"
            "    std::function<void()> cb = [] {};\n"
            "    q.scheduleIn(10, std::function<void()>(cb));\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-eventcapture", out)
        self.assertIn("ctrl.cc:4:", out)
        # The declaration outside the call must not be flagged.
        self.assertNotIn("ctrl.cc:3:", out)

    def test_inline_callback_lambda_passes(self):
        p = self.write(
            "src/ndp/unit.cc",
            "void f(Q &q, int idx) {\n"
            "    q.scheduleIn(TickDelta{10}, [idx] { fire(idx); });\n"
            "    q.schedule(Tick{99}, [] {}, 1);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_std_function_outside_schedule_call_passes(self):
        # A std::function member elsewhere in a hot dir is R5-clean
        # (the rule only polices schedule()/scheduleIn() arguments).
        p = self.write(
            "src/sim/hooks.h",
            "#include <functional>\n"
            "struct Hooks { std::function<void()> onDrain; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_non_hot_dir_is_exempt(self):
        p = self.write(
            "src/anns/replay.cc",
            "#include <functional>\n"
            "void f(Q &q, std::function<void()> cb) {\n"
            "    q.scheduleIn(10, std::function<void()>(cb));\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/cpu/host.cc",
            "void f(Q &q, std::function<void()> cb) {\n"
            "    // NOLINTNEXTLINE(ansmet-eventcapture): cold "
            "init-time path.\n"
            "    q.schedule(Tick{0}, std::function<void()>(cb));\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R6TickUnitsTest(LintRunMixin, unittest.TestCase):
    def test_raw_literal_in_schedule_flags(self):
        p = self.write(
            "src/sim/clock.cc",
            "void f(Q &q, Cb cb) {\n"
            "    q.schedule(100, cb);\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-tickunits", out)
        self.assertIn("'100'", out)
        self.assertIn("sim::Tick", out)

    def test_raw_literal_in_dram_timing_arg_flags(self):
        # issueAct(addr, when): the time argument is the second one.
        p = self.write(
            "src/dram/sched.cc",
            "void f(Device &dev, Addr a) {\n"
            "    dev.issueAct(a, 5000);\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-tickunits", out)
        self.assertIn("issueAct", out)

    def test_digit_separator_literal_flags(self):
        p = self.write(
            "src/ndp/poll.cc",
            "void f(Q &q, Cb cb) { q.scheduleIn(5'000, cb); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("5'000", out)

    def test_constructed_and_named_time_args_pass(self):
        p = self.write(
            "src/sim/clock.cc",
            "void f(Q &q, Cb cb, TickDelta d) {\n"
            "    q.schedule(Tick{100}, cb);\n"
            "    q.scheduleIn(d, cb);\n"
            "    q.scheduleIn(d + TickDelta{5}, cb);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_non_time_literal_args_pass(self):
        # The literal priority argument (index 2) is not a time.
        p = self.write(
            "src/sim/clock.cc",
            "void f(Q &q, Cb cb, Tick t) { q.schedule(t, cb, 1); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_outside_hot_dirs_passes(self):
        p = self.write(
            "src/anns/replay.cc",
            "void f(Q &q, Cb cb) { q.schedule(100, cb); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/sim/clock.cc",
            "void f(Q &q, Cb cb) {\n"
            "    // NOLINTNEXTLINE(ansmet-tickunits): epoch zero is "
            "unitless by definition.\n"
            "    q.schedule(0, cb);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R7LockOrderTest(LintRunMixin, unittest.TestCase):
    def test_two_mutex_cycle_reports_full_path(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    Mutex a_;\n"
            "    Mutex b_;\n"
            "    void f() {\n"
            "        MutexLock la(a_);\n"
            "        MutexLock lb(b_);\n"
            "    }\n"
            "    void g() {\n"
            "        MutexLock lb(b_);\n"
            "        MutexLock la(a_);\n"
            "    }\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-lockorder", out)
        self.assertIn("latent deadlock", out)
        # The full normalized cycle path, then every hop's witness.
        self.assertIn("S::a_ -> S::b_ -> S::a_", out)
        self.assertIn("S::f acquires S::b_", out)
        self.assertIn("S::g acquires S::a_", out)
        self.assertIn("locks.cc:6", out)
        self.assertIn("locks.cc:10", out)

    def test_consistent_order_passes(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void f() { MutexLock la(a_); MutexLock lb(b_); }\n"
            "    void g() { MutexLock la(a_); MutexLock lb(b_); }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_sequential_scopes_pass(self):
        # Opposite textual order, but never held simultaneously.
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void f() { { MutexLock la(a_); } { MutexLock lb(b_); } }\n"
            "    void g() { { MutexLock lb(b_); } { MutexLock la(a_); } }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_cycle_through_call_propagation_flags(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void low() { MutexLock lb(b_); }\n"
            "    void f() {\n"
            "        MutexLock la(a_);\n"
            "        low();\n"
            "    }\n"
            "    void g() { MutexLock lb(b_); MutexLock la(a_); }\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("S::f calls S::low which acquires S::b_", out)

    def test_requires_macro_counts_as_held(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void f() ANSMET_REQUIRES(a_) { MutexLock lb(b_); }\n"
            "    void g() { MutexLock lb(b_); MutexLock la(a_); }\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-lockorder", out)
        self.assertIn("S::a_ -> S::b_", out)

    def test_member_call_on_other_object_does_not_propagate(self):
        # `w.load()` must not resolve to the unrelated Other::load() —
        # resolution is same-class or free functions only.
        p = self.write(
            "src/anns/locks.cc",
            "struct Other {\n"
            "    void load() { MutexLock lb(b_); }\n"
            "};\n"
            "struct S {\n"
            "    void f(Widget &w) { MutexLock la(a_); w.load(); }\n"
            "    void g() {\n"
            "        MutexLock lb(Other::b_);\n"
            "        MutexLock la(S::a_);\n"
            "    }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_on_acquisition_breaks_the_edge(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void f() {\n"
            "        MutexLock la(a_);\n"
            "        // NOLINTNEXTLINE(ansmet-lockorder): init path, "
            "single-threaded.\n"
            "        MutexLock lb(b_);\n"
            "    }\n"
            "    void g() { MutexLock lb(b_); MutexLock la(a_); }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R8DangleCaptureTest(LintRunMixin, unittest.TestCase):
    def test_default_ref_capture_in_schedule_flags(self):
        p = self.write(
            "src/sim/defer.cc",
            "void f(Q &q, TickDelta d) {\n"
            "    int local = 0;\n"
            "    q.scheduleIn(d, [&] { use(local); });\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-danglecapture", out)
        self.assertIn("[&]", out)
        self.assertIn("scheduleIn()", out)

    def test_named_ref_capture_in_oncomplete_flags(self):
        p = self.write(
            "src/ndp/task.cc",
            "void f(NdpTask &t) {\n"
            "    int x = 0;\n"
            "    t.onComplete = [&x] { use(x); };\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("&x", out)
        self.assertIn("onComplete", out)

    def test_value_and_this_captures_pass(self):
        p = self.write(
            "src/sim/defer.cc",
            "void f(Q &q, Tick t, int x) {\n"
            "    q.schedule(t, [this, x] { use(x); });\n"
            "    q.schedule(t, [v = make(x)] { use(v); });\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_ref_lambda_outside_sinks_passes(self):
        # An immediately-invoked or locally-consumed [&] lambda is
        # fine; only deferred-callback sinks are policed.
        p = self.write(
            "src/sim/defer.cc",
            "void f(std::vector<int> &v) {\n"
            "    auto sum = [&] { return v.size(); };\n"
            "    use(sum());\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_subscript_in_sink_is_not_a_lambda(self):
        p = self.write(
            "src/sim/defer.cc",
            "void f(Q &q, Tick t, Cb cbs[]) {\n"
            "    q.schedule(t, cbs[0]);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/ndp/task.cc",
            "void f(NdpTask &t, State &s) {\n"
            "    // NOLINTNEXTLINE(ansmet-danglecapture): s outlives "
            "the task by construction.\n"
            "    t.onComplete = [&s] { s.done = true; };\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R9DetflowTest(LintRunMixin, unittest.TestCase):
    def test_unordered_decl_in_det_dir_flags(self):
        p = self.write(
            "src/et/cache.h",
            "#include <unordered_map>\n"
            "struct C { std::unordered_map<int, int> seen_; };\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-detflow", out)
        self.assertIn("iteration order", out)
        # The #include line itself is exempt; only the use flags.
        self.assertIn("cache.h:2:", out)
        self.assertNotIn("cache.h:1:", out)

    def test_unordered_outside_det_dirs_passes(self):
        p = self.write(
            "src/common/registry.h",
            "#include <unordered_map>\n"
            "struct R { std::unordered_map<int, int> by_id_; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_ordered_map_iteration_passes(self):
        p = self.write(
            "src/anns/graph.cc",
            "#include <map>\n"
            "void f(std::map<int, int> &m, std::vector<int> &out) {\n"
            "    for (const auto &kv : m) out.push_back(kv.first);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_cross_function_taint_chain_flags(self):
        # source (pointer bits) -> return -> argument -> sink inside
        # the callee: the chain spans three functions in one file.
        p = self.write(
            "src/anns/sched.cc",
            "struct Sched {\n"
            "    uint64_t key(void *p) {\n"
            "        return reinterpret_cast<uint64_t>(p);\n"
            "    }\n"
            "    void submit(uint64_t t) {\n"
            "        eq_.scheduleIn(TickDelta{t}, [] {});\n"
            "    }\n"
            "    void go(void *p) { submit(key(p)); }\n"
            "    EventQueue eq_;\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-detflow", out)
        self.assertIn("argument 1 of Sched::submit()", out)
        self.assertIn("event scheduling", out)
        self.assertIn("sched.cc:8:", out)

    def test_range_for_over_unordered_taints_state_write(self):
        p = self.write(
            "src/anns/walk.cc",
            "struct G {\n"
            "    // NOLINTNEXTLINE(ansmet-detflow): fixture decl only.\n"
            "    std::unordered_map<int, int> links_;\n"
            "    std::vector<int> order_;\n"
            "    void walk() {\n"
            "        for (const auto &kv : links_)\n"
            "            order_.push_back(kv.first);\n"
            "    }\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("'order_'", out)
        self.assertIn("walk.cc:7:", out)

    def test_thread_id_into_obs_record_flags(self):
        p = self.write(
            "src/sim/stats.cc",
            "void f(Histo &h) {\n"
            "    auto id = std::this_thread::get_id();\n"
            "    h.record(id);\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("obs-recorded value", out)

    def test_lookup_only_use_does_not_taint(self):
        # find()/count() lookups are value-keyed, not order-dependent;
        # with the declaration waived the taint pass stays silent.
        p = self.write(
            "src/et/lut.cc",
            "struct T {\n"
            "    // NOLINTNEXTLINE(ansmet-detflow): lookup-only table, "
            "never iterated.\n"
            "    std::unordered_map<int, int> lut_;\n"
            "    void f(Q &q, int k) {\n"
            "        auto it = lut_.find(k);\n"
            "        q.scheduleIn(TickDelta{it->second}, [] {});\n"
            "    }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/anns/sched.cc",
            "struct S {\n"
            "    void go(void *p) {\n"
            "        // NOLINTNEXTLINE(ansmet-detflow): dedup key only, "
            "never ordered.\n"
            "        id_ = reinterpret_cast<uint64_t>(p);\n"
            "    }\n"
            "    uint64_t id_;\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R10CheckPureTest(LintRunMixin, unittest.TestCase):
    def test_dcheck_with_pop_flags(self):
        # Regression: a DCHECK that pops the queue it is auditing
        # drains it only when audits are ON.
        p = self.write(
            "src/sim/queue.cc",
            "void f(Q &q) {\n"
            "    ANSMET_DCHECK(q.pop() > 0, \"drained in order\");\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-checkpure", out)
        self.assertIn(".pop()", out)
        self.assertIn("audit-off", out)

    def test_increment_flags(self):
        p = self.write(
            "src/common/count.cc",
            "void f(int n) { ANSMET_DCHECK(++n < 5, \"limit\"); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("'++'", out)

    def test_assignment_flags(self):
        p = self.write(
            "src/common/assign.cc",
            "void f(int n, int m) { ANSMET_DCHECK(n = m, \"typo\"); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("assignment", out)

    def test_pure_comparisons_pass(self):
        p = self.write(
            "src/sim/queue.cc",
            "void f(const Q &q, int lo, int hi) {\n"
            "    ANSMET_DCHECK(q.size() <= 64, \"bounded\");\n"
            "    ANSMET_DCHECK(lo == 0 || lo != hi, \"range\");\n"
            "    ANSMET_DCHECK(q.front() >= lo && q.back() < hi);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_always_on_check_is_exempt(self):
        # ANSMET_CHECK evaluates in every build; side effects there
        # are a style question, not a silent-divergence bug.
        p = self.write(
            "src/serve/adm.cc",
            "void f(S &s, uint64_t id) {\n"
            "    ANSMET_CHECK(s.ids.insert(id).second, \"dup\");\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/sim/queue.cc",
            "void f(Prng &r) {\n"
            "    // NOLINTNEXTLINE(ansmet-checkpure): audit builds only "
            "sample the stream.\n"
            "    ANSMET_DCHECK(r.next() != 0, \"stream alive\");\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R11MustUseTest(LintRunMixin, unittest.TestCase):
    def test_bare_trypush_discard_flags(self):
        p = self.write(
            "src/common/chan.cc",
            "void f(Chan &ch) {\n"
            "    ch.tryPush(7);\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-mustuse", out)
        self.assertIn("tryPush", out)
        self.assertIn("NOT enqueued", out)

    def test_bare_cancelable_schedule_discard_flags(self):
        p = self.write(
            "src/sim/arm.cc",
            "void f(Q &q, Tick t) {\n"
            "    q.scheduleCancelable(t, [] {});\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("scheduleCancelable", out)
        self.assertIn("descheduled", out)

    def test_checked_and_stored_results_pass(self):
        p = self.write(
            "src/common/chan.cc",
            "bool f(Chan &ch, Q &q, Tick t, Hist &h) {\n"
            "    if (!ch.tryPush(7)) return false;\n"
            "    const bool ok = ch.tryPush(8);\n"
            "    auto handle = q.scheduleCancelable(t, [] {});\n"
            "    use(handle, h.quantile(0.99));\n"
            "    return ok && ch.tryPush(9);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_void_cast_acknowledges_discard(self):
        p = self.write(
            "src/common/chan.cc",
            "void f(Chan &ch) {\n"
            "    (void)ch.tryPush(7);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_declaration_is_not_a_discard(self):
        p = self.write(
            "src/common/chan.h",
            "struct Chan {\n"
            "    [[nodiscard]] bool tryPush(int v);\n"
            "    bool tryOffer(uint64_t id, size_t i, Tick now);\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_unbraced_if_body_discard_flags(self):
        p = self.write(
            "src/common/chan.cc",
            "void f(Chan &ch, bool urgent) {\n"
            "    if (urgent) ch.tryPush(7);\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-mustuse", out)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/common/chan.cc",
            "void f(Chan &ch) {\n"
            "    // NOLINTNEXTLINE(ansmet-mustuse): best-effort wake; "
            "drop is benign here.\n"
            "    ch.tryPush(7);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R12CbBlockTest(LintRunMixin, unittest.TestCase):
    def test_mutexlock_in_schedule_callback_flags(self):
        p = self.write(
            "src/sim/pump.cc",
            "void f(Q &q, Tick t) {\n"
            "    q.schedule(t, [this] {\n"
            "        MutexLock lk(mu_);\n"
            "        drain();\n"
            "    });\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-cbblock", out)
        self.assertIn("MutexLock", out)
        self.assertIn("pump.cc:3:", out)

    def test_wait_in_oncomplete_flags(self):
        p = self.write(
            "src/ndp/task.cc",
            "void f(NdpTask &t, TaskGroup &grp) {\n"
            "    t.onComplete = [this] { grp_.wait(); };\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn(".wait()", out)
        self.assertIn("onComplete", out)

    def test_transitive_local_call_flags(self):
        p = self.write(
            "src/dram/ctrl.cc",
            "struct Ctrl {\n"
            "    void lockedTouch() { MutexLock lk(mu_); ++gen_; }\n"
            "    void arm(Tick t) {\n"
            "        eq_.schedule(t, [this] { lockedTouch(); });\n"
            "    }\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("Ctrl::lockedTouch()", out)
        self.assertIn("file-local", out)

    def test_lock_outside_callback_passes(self):
        p = self.write(
            "src/sim/pump.cc",
            "void f(Q &q, Tick t) {\n"
            "    { MutexLock lk(mu_); prime(); }\n"
            "    q.schedule(t, [this] { drainAtomics(); });\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_atomic_reads_in_callback_pass(self):
        p = self.write(
            "src/sim/pump.cc",
            "void f(Q &q, Tick t) {\n"
            "    q.schedule(t, [this] {\n"
            "        auto v = gen_.load(std::memory_order_acquire);\n"
            "        use(v);\n"
            "    });\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_non_hot_dir_is_exempt(self):
        p = self.write(
            "src/serve/eng.cc",
            "void f(Q &q, Tick t) {\n"
            "    q.schedule(t, [this] { MutexLock lk(mu_); });\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/sim/pump.cc",
            "void f(Q &q, Tick t) {\n"
            "    q.schedule(t, [this] {\n"
            "        // NOLINTNEXTLINE(ansmet-cbblock): uncontended "
            "shutdown-only path.\n"
            "        MutexLock lk(mu_);\n"
            "    });\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class LexerRegressionTest(LintRunMixin, unittest.TestCase):
    def test_line_spliced_comment_stays_a_comment(self):
        # A backslash-newline extends a // comment onto the next line;
        # the banned identifier there must not be lexed as code.
        p = self.write(
            "src/sim/doc.cc",
            "// this comment continues \\\n"
            "   rand() srand() random_device\n"
            "int ok = 1;\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_digit_separator_does_not_desync_lexer(self):
        # 5'000 once mis-lexed the ' as a char literal, swallowing the
        # rest of the line and re-lexing later strings as code.
        p = self.write(
            "src/sim/num.cc",
            "int x = 5'000;\n"
            "const char *s = \"do not call rand()\";\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_raw_string_contents_are_not_code(self):
        p = self.write(
            "src/sim/raw.cc",
            "const char *kHelp = R\"(don't call rand())\";\n"
            "const char *kBig = R\"ansmet(\n"
            "rand();\n"
            "int *p = new int(3);\n"
            ")ansmet\";\n"
            "int ok = 1;\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class SuppressionMechanicsTest(LintRunMixin, unittest.TestCase):
    def test_same_line_nolint_waives_only_that_line(self):
        p = self.write(
            "src/sim/r.cc",
            "int a = rand(); // NOLINT(ansmet-determinism): fixture.\n"
            "int b = rand();\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertEqual(out.count("ansmet-determinism"), 1)
        self.assertIn("r.cc:2:", out)

    def test_wrong_rule_name_does_not_waive(self):
        p = self.write(
            "src/sim/r.cc",
            "int a = rand(); // NOLINT(ansmet-rawnew): wrong rule.\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-determinism", out)


class EngineAndDriverTest(LintRunMixin, unittest.TestCase):
    def test_forced_libclang_absent_skips_with_exit_zero(self):
        env_key = "ANSMET_LINT_FORCE_NO_LIBCLANG"
        old = os.environ.get(env_key)
        os.environ[env_key] = "1"
        try:
            p = self.write("src/sim/bad.cc",
                           "int f() { return rand(); }\n")
            code, _, err = self.run_lint(p, engine="libclang")
            self.assertEqual(code, 0)
            self.assertIn("SKIPPING", err)
        finally:
            if old is None:
                del os.environ[env_key]
            else:
                os.environ[env_key] = old

    def test_auto_engine_reports_fallback_but_still_finds(self):
        env_key = "ANSMET_LINT_FORCE_NO_LIBCLANG"
        old = os.environ.get(env_key)
        os.environ[env_key] = "1"
        try:
            p = self.write("src/sim/bad.cc",
                           "int f() { return rand(); }\n")
            code, out, err = self.run_lint(p, engine="auto")
            self.assertEqual(code, 1)
            self.assertIn("falling back", err)
            self.assertIn("ansmet-determinism", out)
        finally:
            if old is None:
                del os.environ[env_key]
            else:
                os.environ[env_key] = old

    def test_directory_walk_finds_nested_files(self):
        self.write("src/ndp/deep/unit.cc",
                   "int f() { return rand(); }\n")
        code, out, _ = self.run_lint(os.path.join(self.root, "src"))
        self.assertEqual(code, 1)
        self.assertIn("unit.cc", out)

    def test_list_rules(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = ansmet_lint.main(["--list-rules"])
        self.assertEqual(code, 0)
        for name in ("ansmet-determinism", "ansmet-rawnew",
                     "ansmet-nolint", "ansmet-rawsync",
                     "ansmet-eventcapture", "ansmet-tickunits",
                     "ansmet-lockorder", "ansmet-danglecapture",
                     "ansmet-detflow", "ansmet-checkpure",
                     "ansmet-mustuse", "ansmet-cbblock"):
            self.assertIn(name, out.getvalue())


class SarifOutputTest(LintRunMixin, unittest.TestCase):
    def test_sarif_findings_parse_and_carry_rule_ids(self):
        p = self.write(
            "src/common/chan.cc",
            "void f(Chan &ch) {\n"
            "    ch.tryPush(7);\n"
            "}\n")
        code, out, _ = self.run_lint(p, extra=("--format", "sarif"))
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "ansmet_lint")
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        self.assertEqual(len(rule_ids), 12)
        self.assertIn("R11/ansmet-mustuse", rule_ids)
        res = run["results"][0]
        self.assertEqual(res["ruleId"], "R11/ansmet-mustuse")
        self.assertEqual(rule_ids[res["ruleIndex"]], res["ruleId"])
        loc = res["locations"][0]["physicalLocation"]
        self.assertTrue(
            loc["artifactLocation"]["uri"].endswith("chan.cc"))
        self.assertEqual(loc["region"]["startLine"], 2)

    def test_sarif_clean_run_emits_valid_empty_log(self):
        p = self.write("src/common/ok.cc", "void f() {}\n")
        code, out, _ = self.run_lint(p, extra=("--format", "sarif"))
        self.assertEqual(code, 0)
        doc = json.loads(out)
        self.assertEqual(doc["runs"][0]["results"], [])

    def test_sarif_output_file(self):
        p = self.write("src/common/ok.cc", "void f() {}\n")
        dest = os.path.join(self.root, "lint.sarif")
        code, _, _ = self.run_lint(
            p, extra=("--format", "sarif", "--output", dest))
        self.assertEqual(code, 0)
        with open(dest, encoding="utf-8") as fh:
            self.assertEqual(json.load(fh)["version"], "2.1.0")


class CacheTest(LintRunMixin, unittest.TestCase):
    """The cache must be invisible: warm runs bitwise-match cold runs,
    including R7 findings that depend on cross-file lock facts."""

    CYCLE = {
        "src/sim/a.cc":
            "void fa() { MutexLock a(mu_a_); takeB(); }\n",
        "src/sim/b.cc":
            "void takeB() { MutexLock b(mu_b_); takeA(); }\n"
            "void takeA() { MutexLock a(mu_a_); }\n",
    }

    def test_warm_run_is_bitwise_identical_and_keeps_r7(self):
        paths = [self.write(rel, text)
                 for rel, text in sorted(self.CYCLE.items())]
        cold = self.run_lint(*paths)
        cache_dir = os.path.join(self.root, ".ansmet_cache", "lint")
        self.assertTrue(os.path.isdir(cache_dir))
        self.assertGreaterEqual(len(os.listdir(cache_dir)), 2)
        warm = self.run_lint(*paths)
        self.assertEqual(cold, warm)
        self.assertEqual(cold[0], 1)
        self.assertIn("ansmet-lockorder", warm[1])

    def test_no_cache_flag_leaves_no_cache_dir(self):
        p = self.write("src/common/ok.cc", "void f() {}\n")
        code, _, _ = self.run_lint(p, extra=("--no-cache",))
        self.assertEqual(code, 0)
        self.assertFalse(
            os.path.exists(os.path.join(self.root, ".ansmet_cache")))

    def test_edit_invalidates_entry(self):
        p = self.write("src/common/chan.cc",
                       "void f(Chan &ch) { (void)ch.tryPush(7); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)
        p = self.write("src/common/chan.cc",
                       "void f(Chan &ch) { ch.tryPush(7); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-mustuse", out)


class ChangedOnlyTest(LintRunMixin, unittest.TestCase):
    def _git(self, *argv):
        subprocess.run(
            ["git", *argv], cwd=self.root, check=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def test_changed_only_lints_just_dirty_files(self):
        clean = self.write("src/sim/clean.cc",
                           "void f(int n) { volatile int x = n; }\n")
        self._git("init", "-q")
        self._git("-c", "user.email=l@t", "-c", "user.name=t",
                  "commit", "-q", "--allow-empty", "-m", "seed")
        self._git("add", "src/sim/clean.cc")
        self._git("-c", "user.email=l@t", "-c", "user.name=t",
                  "commit", "-q", "-m", "clean file")
        # Committed file now grows a violation, but stays unstaged-free:
        # it must NOT be scanned under --changed-only.
        dirty = self.write("src/sim/dirty.cc",
                           "void g(Chan &ch) { ch.tryPush(1); }\n")
        code, out, _ = self.run_lint(
            clean, dirty, extra=("--changed-only",))
        self.assertEqual(code, 1)
        self.assertIn("dirty.cc", out)
        self.assertNotIn("clean.cc:", out)

    def test_changed_only_with_no_changes_is_clean(self):
        p = self.write("src/sim/clean.cc", "void f() {}\n")
        self._git("init", "-q")
        self._git("add", "-A")
        self._git("-c", "user.email=l@t", "-c", "user.name=t",
                  "commit", "-q", "-m", "all clean")
        code, out, _ = self.run_lint(p, extra=("--changed-only",))
        self.assertEqual(code, 0)
        self.assertIn("no changed files", out)


class RealTreeTest(unittest.TestCase):
    def test_repo_src_is_clean(self):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = ansmet_lint.main(
                ["--engine", "lexical", "--repo", REPO])
        self.assertEqual(
            code, 0,
            f"linter found issues in the real tree:\n{out.getvalue()}")


if __name__ == "__main__":
    unittest.main()
