#!/usr/bin/env python3
"""Unit tests for tools/ansmet_lint.py (stdlib unittest only).

Run directly:  python3 tools/test_ansmet_lint.py
Each rule R1-R8 gets a triggering fixture and a passing fixture, plus
a waiver fixture for the semantic rules, tests for the NOLINT
suppression mechanics, lexer regressions (spliced comments, raw
strings, digit separators), the forced-libclang skip path, and a clean
run over the real tree.
"""

import contextlib
import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ansmet_lint  # noqa: E402

REPO = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))


class LintRunMixin:
    """Writes fixture files into a fake repo tree and runs the linter
    over them with the lexical engine (deterministic, no libclang)."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def run_lint(self, *paths, engine="lexical"):
        out, err = io.StringIO(), io.StringIO()
        argv = ["--engine", engine, "--repo", self.root, *paths]
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = ansmet_lint.main(argv)
        return code, out.getvalue(), err.getvalue()


class R1DeterminismTest(LintRunMixin, unittest.TestCase):
    def test_rand_in_sim_dir_flags(self):
        p = self.write("src/sim/model.cc",
                       "int f() { return rand(); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-determinism", out)
        self.assertIn("'rand'", out)

    def test_std_random_engine_in_anns_flags(self):
        p = self.write("src/anns/build.cc",
                       "#include <random>\n"
                       "std::mt19937 g{42};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("mt19937", out)

    def test_system_clock_in_et_flags(self):
        p = self.write("src/et/policy.cc",
                       "auto t = std::chrono::system_clock::now();\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("system_clock", out)

    def test_time_call_flags_but_time_field_passes(self):
        bad = self.write("src/dram/timing.cc",
                         "long now() { return time(nullptr); }\n")
        code, out, _ = self.run_lint(bad)
        self.assertEqual(code, 1)
        self.assertIn("'time'", out)

        good = self.write("src/dram/timing2.cc",
                          "struct Ev { long time; };\n"
                          "long g(Ev &e) { return e.time; }\n"
                          "long h(Ev *e) { return e->time; }\n")
        code, _, _ = self.run_lint(good)
        self.assertEqual(code, 0)

    def test_same_tokens_outside_deterministic_dirs_pass(self):
        p = self.write("src/common/prng.cc",
                       "// Prng implementation may mention rand() in "
                       "comments and use\n"
                       "// whatever it wants internally.\n"
                       "int seedFromEnv() { return 0; }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_banned_name_in_string_or_comment_passes(self):
        p = self.write("src/sim/doc.cc",
                       '// rand() is banned here.\n'
                       'const char *kMsg = "do not call rand()";\n')
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R2RawNewTest(LintRunMixin, unittest.TestCase):
    def test_raw_new_flags(self):
        p = self.write("src/common/pool.cc",
                       "int *leak() { return new int(7); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-rawnew", out)

    def test_raw_delete_flags(self):
        p = self.write("src/common/pool.cc",
                       "void drop(int *p) { delete p; }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("'delete'", out)

    def test_deleted_function_passes(self):
        p = self.write("src/common/nocopy.h",
                       "struct NoCopy {\n"
                       "    NoCopy(const NoCopy &) = delete;\n"
                       "    NoCopy &operator=(const NoCopy &) = delete;\n"
                       "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_placement_new_passes(self):
        p = self.write("src/common/arena.cc",
                       "#include <new>\n"
                       "int *at(void *mem) { return new (mem) int(0); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_suppressed_with_justification_passes(self):
        p = self.write(
            "src/common/singleton.cc",
            "// NOLINTNEXTLINE(ansmet-rawnew): leaked singleton; "
            "atexit-safe.\n"
            "int *g = new int(1);\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R3NolintJustificationTest(LintRunMixin, unittest.TestCase):
    def test_bare_nolint_flags(self):
        p = self.write("src/common/x.cc",
                       "int v = 0; // NOLINT\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-nolint", out)
        # Bare NOLINT is doubly wrong: no check name, no justification.
        self.assertIn("blanket", out)
        self.assertIn("justification", out)

    def test_named_but_unjustified_flags(self):
        p = self.write(
            "src/common/x.cc",
            "int v = 0; // NOLINT(concurrency-mt-unsafe)\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("justification", out)
        self.assertNotIn("blanket", out)

    def test_named_and_justified_passes(self):
        p = self.write(
            "src/common/x.cc",
            "// NOLINTNEXTLINE(concurrency-mt-unsafe): config knob read "
            "once at startup.\n"
            "const char *e = std::getenv(\"X\");\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_nolintend_needs_no_justification(self):
        p = self.write(
            "src/common/x.cc",
            "// NOLINTBEGIN(some-check): generated table below.\n"
            "int t[3] = {1, 2, 3};\n"
            "// NOLINTEND(some-check)\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R4RawSyncTest(LintRunMixin, unittest.TestCase):
    def test_std_mutex_member_flags(self):
        p = self.write("src/et/cache.h",
                       "#include <mutex>\n"
                       "struct C { std::mutex mu; };\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-rawsync", out)
        self.assertIn("common/sync.h", out)

    def test_std_lock_guard_flags(self):
        p = self.write("src/obs/sink.cc",
                       "#include <mutex>\n"
                       "void f(std::mutex &m) {"
                       " std::lock_guard<std::mutex> lk(m); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("lock_guard", out)

    def test_sync_header_itself_is_exempt(self):
        p = self.write("src/common/sync.h",
                       "#include <mutex>\n"
                       "class Mutex { std::mutex mu_; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_unqualified_identifier_passes(self):
        # A field named `mutex` (no std:: qualification) is fine.
        p = self.write("src/common/y.h",
                       "struct HwDesc { int mutex; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_std_thread_outside_runtime_flags(self):
        p = self.write("src/core/sampler.cc",
                       "#include <thread>\n"
                       "void f() { std::thread t([] {}); t.join(); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-rawsync", out)
        self.assertIn("task runtime", out)

    def test_std_async_outside_runtime_flags(self):
        p = self.write("src/anns/builder.cc",
                       "#include <future>\n"
                       "auto f() { return std::async([] { return 1; }); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("std::async", out)

    def test_std_thread_inside_runtime_is_exempt(self):
        p = self.write("src/common/runtime/worker.h",
                       "#include <thread>\n"
                       "class Worker { std::thread thread_; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_std_thread_in_thread_pool_facade_is_exempt(self):
        p = self.write("src/common/thread_pool.cc",
                       "#include <thread>\n"
                       "unsigned n() "
                       "{ return std::thread::hardware_concurrency(); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_this_thread_passes_everywhere(self):
        p = self.write("src/obs/poll.cc",
                       "#include <thread>\n"
                       "void f() { std::this_thread::yield(); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_std_thread_waiver_with_justification_passes(self):
        p = self.write(
            "src/core/probe.cc",
            "#include <thread>\n"
            "// NOLINTNEXTLINE(ansmet-rawsync): OS probe outlives runtime.\n"
            "std::thread spawnProbe();\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R5EventCaptureTest(LintRunMixin, unittest.TestCase):
    def test_std_function_in_schedule_arg_flags(self):
        p = self.write(
            "src/dram/ctrl.cc",
            "#include <functional>\n"
            "void f(Q &q) {\n"
            "    std::function<void()> cb = [] {};\n"
            "    q.scheduleIn(10, std::function<void()>(cb));\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-eventcapture", out)
        self.assertIn("ctrl.cc:4:", out)
        # The declaration outside the call must not be flagged.
        self.assertNotIn("ctrl.cc:3:", out)

    def test_inline_callback_lambda_passes(self):
        p = self.write(
            "src/ndp/unit.cc",
            "void f(Q &q, int idx) {\n"
            "    q.scheduleIn(TickDelta{10}, [idx] { fire(idx); });\n"
            "    q.schedule(Tick{99}, [] {}, 1);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_std_function_outside_schedule_call_passes(self):
        # A std::function member elsewhere in a hot dir is R5-clean
        # (the rule only polices schedule()/scheduleIn() arguments).
        p = self.write(
            "src/sim/hooks.h",
            "#include <functional>\n"
            "struct Hooks { std::function<void()> onDrain; };\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_non_hot_dir_is_exempt(self):
        p = self.write(
            "src/anns/replay.cc",
            "#include <functional>\n"
            "void f(Q &q, std::function<void()> cb) {\n"
            "    q.scheduleIn(10, std::function<void()>(cb));\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/cpu/host.cc",
            "void f(Q &q, std::function<void()> cb) {\n"
            "    // NOLINTNEXTLINE(ansmet-eventcapture): cold "
            "init-time path.\n"
            "    q.schedule(Tick{0}, std::function<void()>(cb));\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R6TickUnitsTest(LintRunMixin, unittest.TestCase):
    def test_raw_literal_in_schedule_flags(self):
        p = self.write(
            "src/sim/clock.cc",
            "void f(Q &q, Cb cb) {\n"
            "    q.schedule(100, cb);\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-tickunits", out)
        self.assertIn("'100'", out)
        self.assertIn("sim::Tick", out)

    def test_raw_literal_in_dram_timing_arg_flags(self):
        # issueAct(addr, when): the time argument is the second one.
        p = self.write(
            "src/dram/sched.cc",
            "void f(Device &dev, Addr a) {\n"
            "    dev.issueAct(a, 5000);\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-tickunits", out)
        self.assertIn("issueAct", out)

    def test_digit_separator_literal_flags(self):
        p = self.write(
            "src/ndp/poll.cc",
            "void f(Q &q, Cb cb) { q.scheduleIn(5'000, cb); }\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("5'000", out)

    def test_constructed_and_named_time_args_pass(self):
        p = self.write(
            "src/sim/clock.cc",
            "void f(Q &q, Cb cb, TickDelta d) {\n"
            "    q.schedule(Tick{100}, cb);\n"
            "    q.scheduleIn(d, cb);\n"
            "    q.scheduleIn(d + TickDelta{5}, cb);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_non_time_literal_args_pass(self):
        # The literal priority argument (index 2) is not a time.
        p = self.write(
            "src/sim/clock.cc",
            "void f(Q &q, Cb cb, Tick t) { q.schedule(t, cb, 1); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_outside_hot_dirs_passes(self):
        p = self.write(
            "src/anns/replay.cc",
            "void f(Q &q, Cb cb) { q.schedule(100, cb); }\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/sim/clock.cc",
            "void f(Q &q, Cb cb) {\n"
            "    // NOLINTNEXTLINE(ansmet-tickunits): epoch zero is "
            "unitless by definition.\n"
            "    q.schedule(0, cb);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R7LockOrderTest(LintRunMixin, unittest.TestCase):
    def test_two_mutex_cycle_reports_full_path(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    Mutex a_;\n"
            "    Mutex b_;\n"
            "    void f() {\n"
            "        MutexLock la(a_);\n"
            "        MutexLock lb(b_);\n"
            "    }\n"
            "    void g() {\n"
            "        MutexLock lb(b_);\n"
            "        MutexLock la(a_);\n"
            "    }\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-lockorder", out)
        self.assertIn("latent deadlock", out)
        # The full normalized cycle path, then every hop's witness.
        self.assertIn("S::a_ -> S::b_ -> S::a_", out)
        self.assertIn("S::f acquires S::b_", out)
        self.assertIn("S::g acquires S::a_", out)
        self.assertIn("locks.cc:6", out)
        self.assertIn("locks.cc:10", out)

    def test_consistent_order_passes(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void f() { MutexLock la(a_); MutexLock lb(b_); }\n"
            "    void g() { MutexLock la(a_); MutexLock lb(b_); }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_sequential_scopes_pass(self):
        # Opposite textual order, but never held simultaneously.
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void f() { { MutexLock la(a_); } { MutexLock lb(b_); } }\n"
            "    void g() { { MutexLock lb(b_); } { MutexLock la(a_); } }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_cycle_through_call_propagation_flags(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void low() { MutexLock lb(b_); }\n"
            "    void f() {\n"
            "        MutexLock la(a_);\n"
            "        low();\n"
            "    }\n"
            "    void g() { MutexLock lb(b_); MutexLock la(a_); }\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("S::f calls S::low which acquires S::b_", out)

    def test_requires_macro_counts_as_held(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void f() ANSMET_REQUIRES(a_) { MutexLock lb(b_); }\n"
            "    void g() { MutexLock lb(b_); MutexLock la(a_); }\n"
            "};\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-lockorder", out)
        self.assertIn("S::a_ -> S::b_", out)

    def test_member_call_on_other_object_does_not_propagate(self):
        # `w.load()` must not resolve to the unrelated Other::load() —
        # resolution is same-class or free functions only.
        p = self.write(
            "src/anns/locks.cc",
            "struct Other {\n"
            "    void load() { MutexLock lb(b_); }\n"
            "};\n"
            "struct S {\n"
            "    void f(Widget &w) { MutexLock la(a_); w.load(); }\n"
            "    void g() {\n"
            "        MutexLock lb(Other::b_);\n"
            "        MutexLock la(S::a_);\n"
            "    }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_on_acquisition_breaks_the_edge(self):
        p = self.write(
            "src/anns/locks.cc",
            "struct S {\n"
            "    void f() {\n"
            "        MutexLock la(a_);\n"
            "        // NOLINTNEXTLINE(ansmet-lockorder): init path, "
            "single-threaded.\n"
            "        MutexLock lb(b_);\n"
            "    }\n"
            "    void g() { MutexLock lb(b_); MutexLock la(a_); }\n"
            "};\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class R8DangleCaptureTest(LintRunMixin, unittest.TestCase):
    def test_default_ref_capture_in_schedule_flags(self):
        p = self.write(
            "src/sim/defer.cc",
            "void f(Q &q, TickDelta d) {\n"
            "    int local = 0;\n"
            "    q.scheduleIn(d, [&] { use(local); });\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-danglecapture", out)
        self.assertIn("[&]", out)
        self.assertIn("scheduleIn()", out)

    def test_named_ref_capture_in_oncomplete_flags(self):
        p = self.write(
            "src/ndp/task.cc",
            "void f(NdpTask &t) {\n"
            "    int x = 0;\n"
            "    t.onComplete = [&x] { use(x); };\n"
            "}\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("&x", out)
        self.assertIn("onComplete", out)

    def test_value_and_this_captures_pass(self):
        p = self.write(
            "src/sim/defer.cc",
            "void f(Q &q, Tick t, int x) {\n"
            "    q.schedule(t, [this, x] { use(x); });\n"
            "    q.schedule(t, [v = make(x)] { use(v); });\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_ref_lambda_outside_sinks_passes(self):
        # An immediately-invoked or locally-consumed [&] lambda is
        # fine; only deferred-callback sinks are policed.
        p = self.write(
            "src/sim/defer.cc",
            "void f(std::vector<int> &v) {\n"
            "    auto sum = [&] { return v.size(); };\n"
            "    use(sum());\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_subscript_in_sink_is_not_a_lambda(self):
        p = self.write(
            "src/sim/defer.cc",
            "void f(Q &q, Tick t, Cb cbs[]) {\n"
            "    q.schedule(t, cbs[0]);\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_waiver_with_justification_passes(self):
        p = self.write(
            "src/ndp/task.cc",
            "void f(NdpTask &t, State &s) {\n"
            "    // NOLINTNEXTLINE(ansmet-danglecapture): s outlives "
            "the task by construction.\n"
            "    t.onComplete = [&s] { s.done = true; };\n"
            "}\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class LexerRegressionTest(LintRunMixin, unittest.TestCase):
    def test_line_spliced_comment_stays_a_comment(self):
        # A backslash-newline extends a // comment onto the next line;
        # the banned identifier there must not be lexed as code.
        p = self.write(
            "src/sim/doc.cc",
            "// this comment continues \\\n"
            "   rand() srand() random_device\n"
            "int ok = 1;\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_digit_separator_does_not_desync_lexer(self):
        # 5'000 once mis-lexed the ' as a char literal, swallowing the
        # rest of the line and re-lexing later strings as code.
        p = self.write(
            "src/sim/num.cc",
            "int x = 5'000;\n"
            "const char *s = \"do not call rand()\";\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)

    def test_raw_string_contents_are_not_code(self):
        p = self.write(
            "src/sim/raw.cc",
            "const char *kHelp = R\"(don't call rand())\";\n"
            "const char *kBig = R\"ansmet(\n"
            "rand();\n"
            "int *p = new int(3);\n"
            ")ansmet\";\n"
            "int ok = 1;\n")
        code, _, _ = self.run_lint(p)
        self.assertEqual(code, 0)


class SuppressionMechanicsTest(LintRunMixin, unittest.TestCase):
    def test_same_line_nolint_waives_only_that_line(self):
        p = self.write(
            "src/sim/r.cc",
            "int a = rand(); // NOLINT(ansmet-determinism): fixture.\n"
            "int b = rand();\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertEqual(out.count("ansmet-determinism"), 1)
        self.assertIn("r.cc:2:", out)

    def test_wrong_rule_name_does_not_waive(self):
        p = self.write(
            "src/sim/r.cc",
            "int a = rand(); // NOLINT(ansmet-rawnew): wrong rule.\n")
        code, out, _ = self.run_lint(p)
        self.assertEqual(code, 1)
        self.assertIn("ansmet-determinism", out)


class EngineAndDriverTest(LintRunMixin, unittest.TestCase):
    def test_forced_libclang_absent_skips_with_exit_zero(self):
        env_key = "ANSMET_LINT_FORCE_NO_LIBCLANG"
        old = os.environ.get(env_key)
        os.environ[env_key] = "1"
        try:
            p = self.write("src/sim/bad.cc",
                           "int f() { return rand(); }\n")
            code, _, err = self.run_lint(p, engine="libclang")
            self.assertEqual(code, 0)
            self.assertIn("SKIPPING", err)
        finally:
            if old is None:
                del os.environ[env_key]
            else:
                os.environ[env_key] = old

    def test_auto_engine_reports_fallback_but_still_finds(self):
        env_key = "ANSMET_LINT_FORCE_NO_LIBCLANG"
        old = os.environ.get(env_key)
        os.environ[env_key] = "1"
        try:
            p = self.write("src/sim/bad.cc",
                           "int f() { return rand(); }\n")
            code, out, err = self.run_lint(p, engine="auto")
            self.assertEqual(code, 1)
            self.assertIn("falling back", err)
            self.assertIn("ansmet-determinism", out)
        finally:
            if old is None:
                del os.environ[env_key]
            else:
                os.environ[env_key] = old

    def test_directory_walk_finds_nested_files(self):
        self.write("src/ndp/deep/unit.cc",
                   "int f() { return rand(); }\n")
        code, out, _ = self.run_lint(os.path.join(self.root, "src"))
        self.assertEqual(code, 1)
        self.assertIn("unit.cc", out)

    def test_list_rules(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = ansmet_lint.main(["--list-rules"])
        self.assertEqual(code, 0)
        for name in ("ansmet-determinism", "ansmet-rawnew",
                     "ansmet-nolint", "ansmet-rawsync",
                     "ansmet-eventcapture", "ansmet-tickunits",
                     "ansmet-lockorder", "ansmet-danglecapture"):
            self.assertIn(name, out.getvalue())


class RealTreeTest(unittest.TestCase):
    def test_repo_src_is_clean(self):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = ansmet_lint.main(
                ["--engine", "lexical", "--repo", REPO])
        self.assertEqual(
            code, 0,
            f"linter found issues in the real tree:\n{out.getvalue()}")


if __name__ == "__main__":
    unittest.main()
