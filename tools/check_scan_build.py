#!/usr/bin/env python3
"""Diff Clang Static Analyzer (scan-build) plist output against a
checked-in baseline.

scan-build's exit status alone is useless as a CI gate for an existing
tree: any pre-existing diagnostic would permanently fail the job. This
gate instead keys each diagnostic to a stable identity and fails only
when a diagnostic appears that is not in tools/scan_build_baseline.txt;
fixed diagnostics are reported so the baseline can be trimmed.

Usage:
    python3 tools/check_scan_build.py <plist-dir> [--update]

<plist-dir> is the -o directory passed to `scan-build -plist` (plists
may be nested one level down in a timestamped subdirectory; the walk
finds them wherever they are). --update rewrites the baseline from the
current findings instead of diffing.

Diagnostic identity is `path :: checker :: description` with the path
made repo-relative. Line numbers are deliberately excluded: they churn
with every unrelated edit, and two same-checker/same-description
findings in one file are rare enough that collapsing them is the right
trade for a stable baseline.

Only findings under the simulator hot path (src/sim, src/dram,
src/ndp) gate the build; the analyzer sees the whole library, but the
rest of the tree is reported informationally.
"""

import argparse
import os
import plistlib
import sys

GATED_DIRS = ("src/sim", "src/dram", "src/ndp")

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "scan_build_baseline.txt")


def repo_rel(path):
    """Best-effort repo-relative form of an analyzer source path."""
    path = path.replace("\\", "/")
    for marker in ("/src/", "/include/", "/tools/", "/tests/"):
        idx = path.find(marker)
        if idx >= 0:
            return path[idx + 1:]
    return os.path.basename(path)


def load_plists(root):
    """Yield (rel_path, checker, description) for every diagnostic in
    every .plist file under root."""
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            if not name.endswith(".plist"):
                continue
            full = os.path.join(dirpath, name)
            try:
                with open(full, "rb") as f:
                    data = plistlib.load(f)
            except Exception as e:  # malformed plist: surface, don't gate
                print(f"warning: unreadable plist {full}: {e}",
                      file=sys.stderr)
                continue
            files = data.get("files", [])
            for diag in data.get("diagnostics", []):
                loc = diag.get("location", {})
                file_idx = loc.get("file")
                src = (files[file_idx]
                       if isinstance(file_idx, int) and
                       0 <= file_idx < len(files) else "<unknown>")
                yield (repo_rel(src),
                       diag.get("check_name", "<unknown-checker>"),
                       diag.get("description", "").strip())


def finding_key(rel, checker, description):
    return f"{rel} :: {checker} :: {description}"


def read_baseline():
    if not os.path.exists(BASELINE):
        return set()
    out = set()
    with open(BASELINE, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                out.add(line)
    return out


def write_baseline(keys):
    with open(BASELINE, "w", encoding="utf-8") as f:
        f.write(
            "# Clang Static Analyzer baseline for the gated directories\n"
            "# (src/sim, src/dram, src/ndp). One finding per line:\n"
            "#   path :: checker :: description\n"
            "# Regenerate after triaging an intentional change with:\n"
            "#   python3 tools/check_scan_build.py --update <plist-dir>\n")
        for k in sorted(keys):
            f.write(k + "\n")


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Gate scan-build plist output on a baseline.")
    ap.add_argument("plist_dir", help="scan-build -o output directory")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from current findings")
    args = ap.parse_args(argv)

    if not os.path.isdir(args.plist_dir):
        # scan-build only creates the directory when it has output; an
        # analysis with zero diagnostics is a pass, not a config error.
        print(f"check_scan_build: no plist directory at "
              f"{args.plist_dir}; treating as zero findings")
        findings = []
    else:
        findings = sorted(set(load_plists(args.plist_dir)))

    gated = {finding_key(*f) for f in findings
             if any(f[0].startswith(d + "/") or f[0] == d
                    for d in GATED_DIRS)}
    ungated = [finding_key(*f) for f in findings
               if finding_key(*f) not in gated]

    if args.update:
        write_baseline(gated)
        print(f"check_scan_build: baseline rewritten with "
              f"{len(gated)} finding(s)")
        return 0

    baseline = read_baseline()
    new = sorted(gated - baseline)
    fixed = sorted(baseline - gated)

    for k in ungated:
        print(f"info (ungated): {k}")
    for k in fixed:
        print(f"fixed (remove from baseline): {k}")
    for k in new:
        print(f"NEW: {k}")

    if new:
        print(f"check_scan_build: {len(new)} new analyzer finding(s) in "
              f"{', '.join(GATED_DIRS)} — fix them or, if triaged as "
              f"false positives, refresh the baseline with --update")
        return 1
    print(f"check_scan_build: clean ({len(gated)} baselined, "
          f"{len(fixed)} fixed, {len(ungated)} outside gated dirs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
