#!/usr/bin/env bash
# Header self-containment gate: compile every header under src/ as its
# own translation unit (g++/clang++ -fsyntax-only). A header that only
# compiles after its includer happens to pull in the right things is a
# refactoring landmine; this keeps "include what you use" honest.
#
# Usage: tools/check_headers.sh [compiler]
#
# The compiler defaults to c++, then falls back across g++/clang++.
# Exits non-zero listing every header that fails to stand alone.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cxx="${1:-}"
if [ -z "$cxx" ]; then
    for cand in c++ g++ clang++; do
        if command -v "$cand" >/dev/null 2>&1; then
            cxx="$cand"
            break
        fi
    done
fi
if [ -z "$cxx" ] || ! command -v "$cxx" >/dev/null 2>&1; then
    echo "check_headers: no C++ compiler found; SKIPPING gate" >&2
    exit 0
fi

# Headers that are legitimately not standalone. Keep this list empty
# unless a header is by design a fragment (none are today).
exempt=()

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

mapfile -t headers < <(cd "$repo_root" && find src -name '*.h' | sort)
echo "check_headers: $cxx -fsyntax-only over ${#headers[@]} headers"

status=0
for h in "${headers[@]}"; do
    skip=0
    for e in "${exempt[@]:-}"; do
        [ "$h" = "$e" ] && skip=1
    done
    [ "$skip" -eq 1 ] && continue
    rel="${h#src/}"
    tu="$tmpdir/tu.cc"
    printf '#include "%s"\n' "$rel" > "$tu"
    if ! "$cxx" -std=c++20 -fsyntax-only -Wall -Wextra -Werror \
            -I "$repo_root/src" "$tu" 2> "$tmpdir/err"; then
        status=1
        echo "check_headers: NOT SELF-CONTAINED: $h" >&2
        cat "$tmpdir/err" >&2
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_headers: clean"
else
    echo "check_headers: add the missing includes/declarations above" >&2
fi
exit "$status"
