#!/usr/bin/env python3
"""Compare google-benchmark JSON outputs and reproduced figure text.

Four modes, stdlib only:

  Delta mode -- compare two runs benchmark-by-benchmark:

      tools/bench_diff.py old.json new.json [--threshold PCT]

    Prints per-benchmark time deltas (new vs old) and exits nonzero if
    any shared benchmark regressed by more than --threshold percent
    (default: report only, never fail).

  Speedup mode -- compare tiers against their baseline within one run:

      tools/bench_diff.py --speedup BENCH_kernels.json \
          [--min-ratio R --require NAME]...

    Tiered benchmarks are named  <family>/<tier>. Three tier groups:
    SIMD kernels use scalar | avx2 | avx512 (baseline: scalar, e.g.
    kernel_l2_batch/fp32/avx2), simulator macro-benchmarks use
    ref | opt (baseline: ref, e.g. sim_queue/replay/opt), and task
    runtime macro-benchmarks use flat | task (baseline: flat, e.g.
    runtime_steal/task against the retired flat pool). For every
    non-baseline entry whose baseline sibling exists, prints the ratio
    baseline_time / tier_time. Each --require NAME (full benchmark
    name) must be present and meet --min-ratio, otherwise exit 1 --
    this is the CI perf-smoke assertion.

  Figures mode -- assert two reproduced figure texts are identical:

      tools/bench_diff.py --figures old.txt new.txt

    Compares the bench binaries' stdout line by line, ignoring the
    wall-clock '[timing]' footer. Any other difference (a changed
    table cell, a missing row) prints a unified diff and exits 1 --
    this is the CI determinism/no-perturbation assertion.

  Tail mode -- gate serving tail latency from a macro_serve sweep:

      tools/bench_diff.py --tail BENCH_serve.json \
          [--gate 'total.p99<=60us']... [--sweep-index N]

    Reads the 'ansmet-serve-v1' JSON emitted by bench/macro_serve
    --out. Each --gate is PHASE.QUANTILE<=BOUND where PHASE is one of
    the serving phases (queue_wait, traverse, offload, compute,
    collect, total), QUANTILE is p50 | p99 | p999 | max | mean, and
    BOUND takes a ps/ns/us/ms suffix (plain numbers are picoseconds).
    'dropped<=N' and 'completed>=N' gate the admission counters.
    Gates apply to one sweep point, --sweep-index (default 0, the
    lowest offered load); every number in the file is a deterministic
    simulated quantity, so the bounds can be tight without runner
    noise. Exit 1 if any gate fails -- this is the CI serving-tail
    assertion.

Exit codes: 0 ok, 1 comparison failed, 2 unreadable/malformed input.
"""

import argparse
import difflib
import json
import sys

TIERS = ("scalar", "avx2", "avx512", "ref", "opt", "flat", "task")

SERVE_SCHEMA = "ansmet-serve-v1"

# Latency gate units, as picosecond multipliers (serve JSON is in ps).
TAIL_UNITS = {"ps": 1.0, "ns": 1e3, "us": 1e6, "ms": 1e9}

TAIL_QUANTILES = ("p50", "p99", "p999", "max", "mean")

# Per-point admission counters that can be gated alongside phase
# quantiles: name -> comparison direction.
TAIL_COUNTERS = {"dropped": "<=", "completed": ">="}

# Tiers that serve as the denominator of a speedup ratio; a measured
# entry's baseline sibling is looked up in this order.
BASELINE_TIERS = ("scalar", "ref", "flat")


class InputError(Exception):
    """A file we were asked to compare cannot be used."""


def load_times(path):
    """Map benchmark name -> real_time (ns) from a benchmark JSON file."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        raise InputError(f"cannot read benchmark file {path!r}: "
                         f"{e.strerror or e}") from e
    except json.JSONDecodeError as e:
        raise InputError(f"{path!r} is not valid JSON (line {e.lineno}: "
                         f"{e.msg}); was the benchmark run interrupted?"
                         ) from e
    if not isinstance(data, dict):
        raise InputError(f"{path!r}: expected a google-benchmark JSON "
                         f"object, got {type(data).__name__}")
    times = {}
    for i, b in enumerate(data.get("benchmarks", [])):
        # Skip aggregate rows (mean/median/stddev) of repeated runs.
        if b.get("run_type") == "aggregate":
            continue
        try:
            times[b["name"]] = float(b["real_time"])
        except (KeyError, TypeError, ValueError) as e:
            raise InputError(f"{path!r}: benchmark entry {i} is missing "
                             f"or has a malformed name/real_time field"
                             ) from e
    if not times:
        raise InputError(f"{path!r} contains no benchmark entries")
    return times


def load_figure_lines(path):
    """Figure-text lines with the wall-clock footer stripped."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise InputError(f"cannot read figure file {path!r}: "
                         f"{e.strerror or e}") from e
    kept = [l for l in lines if not l.startswith("[timing]")]
    if not any(l.strip() for l in kept):
        raise InputError(f"{path!r} contains no figure output")
    return kept


def load_serve_sweep(path):
    """Validated sweep-point list from a macro_serve --out JSON file."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        raise InputError(f"cannot read serve file {path!r}: "
                         f"{e.strerror or e}") from e
    except json.JSONDecodeError as e:
        raise InputError(f"{path!r} is not valid JSON (line {e.lineno}: "
                         f"{e.msg}); was macro_serve interrupted?") from e
    if not isinstance(data, dict) or data.get("schema") != SERVE_SCHEMA:
        raise InputError(f"{path!r}: expected a {SERVE_SCHEMA!r} object "
                         f"from 'macro_serve --out'")
    sweep = data.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        raise InputError(f"{path!r}: sweep is empty")
    for i, point in enumerate(sweep):
        if not isinstance(point, dict) or \
                not isinstance(point.get("phases"), dict):
            raise InputError(f"{path!r}: sweep point {i} is missing its "
                             f"phases object")
    return sweep


def parse_gate(spec):
    """('total', 'p99_ps', 6e7, '<=') for 'total.p99<=60us'.

    Counter gates parse to (name, None, bound, op), e.g.
    ('dropped', None, 0.0, '<=') for 'dropped<=0'.
    """
    for name, op in TAIL_COUNTERS.items():
        if spec.startswith(name + op):
            rhs = spec[len(name) + len(op):]
            try:
                return name, None, float(rhs), op
            except ValueError as e:
                raise InputError(f"gate {spec!r}: {rhs!r} is not a "
                                 f"number") from e
    lhs, sep, rhs = spec.partition("<=")
    if not sep:
        counters = ", ".join(n + o for n, o in TAIL_COUNTERS.items())
        raise InputError(f"gate {spec!r}: expected PHASE.QUANTILE<=BOUND "
                         f"(e.g. 'total.p99<=60us') or a counter gate "
                         f"({counters})")
    phase, dot, quant = lhs.partition(".")
    if not dot or not phase or quant not in TAIL_QUANTILES:
        raise InputError(f"gate {spec!r}: left side must be "
                         f"PHASE.({'|'.join(TAIL_QUANTILES)})")
    unit = "ps"
    for suffix in TAIL_UNITS:
        if rhs.endswith(suffix):
            unit, rhs = suffix, rhs[:-len(suffix)]
            break
    try:
        bound = float(rhs) * TAIL_UNITS[unit]
    except ValueError as e:
        raise InputError(f"gate {spec!r}: bound {rhs!r} is not a "
                         f"number") from e
    return phase, quant + "_ps", bound, "<="


def format_ps(ps):
    """Human-readable time from picoseconds."""
    for unit in ("ms", "us", "ns"):
        if ps >= TAIL_UNITS[unit]:
            return f"{ps / TAIL_UNITS[unit]:.2f}{unit}"
    return f"{ps:.0f}ps"


def run_tail(args):
    sweep = load_serve_sweep(args.files[0])

    print(f"{'offered qps':>12}  {'achieved qps':>12}  {'done':>5}  "
          f"{'drop':>5}  {'total p50':>10}  {'total p99':>10}  "
          f"{'total p999':>10}")
    for point in sweep:
        total = point.get("phases", {}).get("total", {})
        print(f"{point.get('offered_qps', 0.0):>12.0f}  "
              f"{point.get('achieved_qps', 0.0):>12.0f}  "
              f"{point.get('completed', 0):>5}  "
              f"{point.get('dropped', 0):>5}  "
              f"{format_ps(total.get('p50_ps', 0)):>10}  "
              f"{format_ps(total.get('p99_ps', 0)):>10}  "
              f"{format_ps(total.get('p999_ps', 0)):>10}")

    if not (0 <= args.sweep_index < len(sweep)):
        raise InputError(f"--sweep-index {args.sweep_index} out of range "
                         f"(sweep has {len(sweep)} points)")
    point = sweep[args.sweep_index]
    print(f"gating sweep point {args.sweep_index} "
          f"(offered {point.get('offered_qps', 0.0):.0f} qps)")

    failed = False
    for spec in args.gate:
        phase, key, bound, op = parse_gate(spec)
        if key is None:
            value = point.get(phase)
            if value is None:
                print(f"FAIL: counter '{phase}' missing from sweep "
                      f"point", file=sys.stderr)
                failed = True
                continue
            ok = value <= bound if op == "<=" else value >= bound
            if ok:
                print(f"ok: {phase} = {value:g} ({op} {bound:g})")
            else:
                print(f"FAIL: {phase} = {value:g}, gate {spec!r}",
                      file=sys.stderr)
                failed = True
            continue
        stats = point["phases"].get(phase)
        if stats is None or key not in stats:
            print(f"FAIL: gate {spec!r}: phase '{phase}' / '{key}' not "
                  f"in sweep point", file=sys.stderr)
            failed = True
            continue
        value = float(stats[key])
        if value <= bound:
            print(f"ok: {phase}.{key} = {format_ps(value)} "
                  f"(<= {format_ps(bound)})")
        else:
            print(f"FAIL: {phase}.{key} = {format_ps(value)} exceeds "
                  f"{format_ps(bound)} (gate {spec!r})", file=sys.stderr)
            failed = True
    return 1 if failed else 0


def split_tier(name):
    """('kernel_l2/fp32', 'avx2') for 'kernel_l2/fp32/avx2', else None."""
    head, sep, tier = name.rpartition("/")
    if sep and tier in TIERS:
        return head, tier
    return None


def run_delta(args):
    old = load_times(args.files[0])
    new = load_times(args.files[1])
    shared = sorted(set(old) & set(new))
    if not shared:
        print("no shared benchmarks between the two files", file=sys.stderr)
        return 1
    width = max(len(n) for n in shared)
    worst = 0.0
    print(f"{'benchmark':<{width}}  {'old ns':>12}  {'new ns':>12}  delta")
    for name in shared:
        delta = (new[name] - old[name]) / old[name] * 100.0
        worst = max(worst, delta)
        print(f"{name:<{width}}  {old[name]:>12.1f}  {new[name]:>12.1f}  "
              f"{delta:+7.1f}%")
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"removed: {', '.join(only_old)}")
    if only_new:
        print(f"added: {', '.join(only_new)}")
    if args.threshold is not None and worst > args.threshold:
        print(f"FAIL: worst regression {worst:+.1f}% exceeds "
              f"threshold {args.threshold:.1f}%", file=sys.stderr)
        return 1
    return 0


def run_speedup(args):
    times = load_times(args.files[0])
    ratios = {}
    for name, t in sorted(times.items()):
        parts = split_tier(name)
        if parts is None or parts[1] in BASELINE_TIERS:
            continue
        family, tier = parts
        base_time = next((times[f"{family}/{b}"] for b in BASELINE_TIERS
                          if f"{family}/{b}" in times), None)
        if base_time is None or t <= 0.0:
            continue
        ratios[name] = base_time / t

    if not ratios:
        print("no tiered kernel benchmarks found", file=sys.stderr)
        return 1

    width = max(len(n) for n in ratios)
    print(f"{'benchmark':<{width}}  speedup vs baseline")
    for name, r in sorted(ratios.items()):
        print(f"{name:<{width}}  {r:6.2f}x")

    failed = False
    for req in args.require:
        if req not in ratios:
            print(f"FAIL: required benchmark '{req}' not found",
                  file=sys.stderr)
            failed = True
        elif args.min_ratio is not None and ratios[req] < args.min_ratio:
            print(f"FAIL: {req} speedup {ratios[req]:.2f}x below "
                  f"required {args.min_ratio:.2f}x", file=sys.stderr)
            failed = True
        else:
            print(f"ok: {req} speedup {ratios[req]:.2f}x")
    return 1 if failed else 0


def run_figures(args):
    old_path, new_path = args.files
    old = load_figure_lines(old_path)
    new = load_figure_lines(new_path)
    if old == new:
        print(f"figures identical: {old_path} == {new_path} "
              f"({len(old)} lines, [timing] footer ignored)")
        return 0
    diff = difflib.unified_diff(old, new, fromfile=old_path,
                                tofile=new_path, lineterm="")
    for line in diff:
        print(line)
    print(f"FAIL: figure output differs between {old_path!r} and "
          f"{new_path!r}", file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+",
                    help="input file(s): two JSON for delta mode, one "
                         "JSON with --speedup, two texts with --figures")
    ap.add_argument("--speedup", action="store_true",
                    help="single-file tier-vs-scalar speedup mode")
    ap.add_argument("--figures", action="store_true",
                    help="two-file figure-text identity mode")
    ap.add_argument("--tail", action="store_true",
                    help="single-file serving tail-latency gate mode")
    ap.add_argument("--gate", action="append", default=[],
                    help="tail mode: PHASE.QUANTILE<=BOUND with ps/ns/"
                         "us/ms suffix, or dropped<=N / completed>=N "
                         "(repeatable)")
    ap.add_argument("--sweep-index", type=int, default=0,
                    help="tail mode: sweep point the gates apply to "
                         "(default 0, the lowest offered load)")
    ap.add_argument("--min-ratio", type=float, default=None,
                    help="minimum speedup each --require must meet")
    ap.add_argument("--require", action="append", default=[],
                    help="benchmark name that must meet --min-ratio "
                         "(repeatable)")
    ap.add_argument("--threshold", type=float, default=None,
                    help="delta mode: fail if any benchmark regresses "
                         "by more than this percent")
    args = ap.parse_args()

    if sum((args.speedup, args.figures, args.tail)) > 1:
        ap.error("--speedup, --figures and --tail are mutually exclusive")
    if args.tail:
        if len(args.files) != 1:
            ap.error("--tail takes exactly one serve JSON file")
        return run_tail(args)
    if args.speedup:
        if len(args.files) != 1:
            ap.error("--speedup takes exactly one JSON file")
        return run_speedup(args)
    if args.figures:
        if len(args.files) != 2:
            ap.error("--figures takes exactly two figure text files")
        return run_figures(args)
    if len(args.files) != 2:
        ap.error("delta mode takes exactly two JSON files")
    return run_delta(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except InputError as e:
        print(f"error: {e}", file=sys.stderr)
        sys.exit(2)
    except BrokenPipeError:  # output piped into head etc.
        sys.exit(0)
