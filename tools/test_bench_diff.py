#!/usr/bin/env python3
"""Unit tests for bench_diff.py (stdlib only).

Run directly:  python3 tools/test_bench_diff.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "bench_diff.py")


def run_tool(*argv):
    return subprocess.run([sys.executable, TOOL, *argv],
                          capture_output=True, text=True)


def bench_json(entries):
    return json.dumps({
        "benchmarks": [{"name": n, "real_time": t} for n, t in entries]
    })


def serve_json(points):
    """ansmet-serve-v1 text from [(offered_qps, dropped, total_p99_ps)]."""
    sweep = []
    for qps, dropped, p99 in points:
        phases = {
            name: {"count": 96, "p50_ps": p99 // 2, "p99_ps": p99,
                   "p999_ps": p99, "max_ps": p99, "mean_ps": p99 / 2.0}
            for name in ("queue_wait", "traverse", "offload", "compute",
                         "collect", "total")
        }
        sweep.append({"offered_qps": qps, "achieved_qps": qps * 0.9,
                      "offered": 96, "completed": 96 - dropped,
                      "dropped": dropped, "max_occupied_qshrs": 16,
                      "phases": phases})
    return json.dumps({"schema": "ansmet-serve-v1", "design": "NDP-ETOpt",
                       "dataset": "sift", "seed": 1, "process": "poisson",
                       "sweep": sweep})


class TempFiles(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, content):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path


class MalformedInput(TempFiles):
    def test_missing_file_exits_2(self):
        ok = self.write("ok.json", bench_json([("a", 1.0)]))
        r = run_tool(ok, os.path.join(self._dir.name, "nope.json"))
        self.assertEqual(r.returncode, 2)
        self.assertIn("cannot read benchmark file", r.stderr)
        self.assertIn("nope.json", r.stderr)

    def test_invalid_json_exits_2(self):
        bad = self.write("bad.json", '{"benchmarks": [')
        ok = self.write("ok.json", bench_json([("a", 1.0)]))
        r = run_tool(bad, ok)
        self.assertEqual(r.returncode, 2)
        self.assertIn("not valid JSON", r.stderr)

    def test_wrong_shape_exits_2(self):
        bad = self.write("list.json", "[1, 2, 3]")
        r = run_tool("--speedup", bad)
        self.assertEqual(r.returncode, 2)
        self.assertIn("expected a google-benchmark JSON object", r.stderr)

    def test_entry_missing_real_time_exits_2(self):
        bad = self.write("bad.json",
                         json.dumps({"benchmarks": [{"name": "x"}]}))
        r = run_tool("--speedup", bad)
        self.assertEqual(r.returncode, 2)
        self.assertIn("malformed name/real_time", r.stderr)

    def test_empty_benchmarks_exits_2(self):
        bad = self.write("empty.json", json.dumps({"benchmarks": []}))
        r = run_tool("--speedup", bad)
        self.assertEqual(r.returncode, 2)
        self.assertIn("no benchmark entries", r.stderr)


class DeltaMode(TempFiles):
    def test_reports_deltas_without_threshold(self):
        old = self.write("old.json", bench_json([("a", 100.0),
                                                 ("b", 50.0)]))
        new = self.write("new.json", bench_json([("a", 150.0),
                                                 ("b", 50.0)]))
        r = run_tool(old, new)
        self.assertEqual(r.returncode, 0)
        self.assertIn("+50.0%", r.stdout)

    def test_threshold_fails_on_regression(self):
        old = self.write("old.json", bench_json([("a", 100.0)]))
        new = self.write("new.json", bench_json([("a", 150.0)]))
        r = run_tool(old, new, "--threshold", "20")
        self.assertEqual(r.returncode, 1)
        self.assertIn("FAIL", r.stderr)

    def test_disjoint_benchmarks_fail(self):
        old = self.write("old.json", bench_json([("a", 1.0)]))
        new = self.write("new.json", bench_json([("b", 1.0)]))
        r = run_tool(old, new)
        self.assertEqual(r.returncode, 1)
        self.assertIn("no shared benchmarks", r.stderr)


class SpeedupMode(TempFiles):
    def test_ratio_and_require(self):
        f = self.write("k.json", bench_json([
            ("kernel_l2/fp32/scalar", 100.0),
            ("kernel_l2/fp32/avx2", 25.0),
        ]))
        r = run_tool("--speedup", f, "--min-ratio", "2.0",
                     "--require", "kernel_l2/fp32/avx2")
        self.assertEqual(r.returncode, 0)
        self.assertIn("4.00x", r.stdout)

    def test_ref_opt_tier_pairs_against_ref(self):
        f = self.write("s.json", bench_json([
            ("sim_queue/replay/ref", 300.0),
            ("sim_queue/replay/opt", 100.0),
            ("sim_replay/fig06_ndp/opt", 50.0),  # no ref sibling
        ]))
        r = run_tool("--speedup", f, "--min-ratio", "2.0",
                     "--require", "sim_queue/replay/opt")
        self.assertEqual(r.returncode, 0)
        self.assertIn("3.00x", r.stdout)
        self.assertNotIn("fig06_ndp", r.stdout)

    def test_flat_task_tier_pairs_against_flat(self):
        f = self.write("r.json", bench_json([
            ("runtime_steal/flat", 300.0),
            ("runtime_steal/task", 100.0),
            ("runtime_affinity/local/task", 50.0),  # no flat sibling
        ]))
        r = run_tool("--speedup", f, "--min-ratio", "1.3",
                     "--require", "runtime_steal/task")
        self.assertEqual(r.returncode, 0)
        self.assertIn("3.00x", r.stdout)
        self.assertNotIn("affinity", r.stdout)

    def test_scalar_baseline_wins_over_ref(self):
        # A family carrying both baselines pairs against scalar.
        f = self.write("m.json", bench_json([
            ("x/scalar", 400.0),
            ("x/ref", 200.0),
            ("x/opt", 100.0),
        ]))
        r = run_tool("--speedup", f)
        self.assertEqual(r.returncode, 0)
        self.assertIn("4.00x", r.stdout)

    def test_require_below_ratio_fails(self):
        f = self.write("k.json", bench_json([
            ("kernel_l2/fp32/scalar", 100.0),
            ("kernel_l2/fp32/avx2", 90.0),
        ]))
        r = run_tool("--speedup", f, "--min-ratio", "2.0",
                     "--require", "kernel_l2/fp32/avx2")
        self.assertEqual(r.returncode, 1)
        self.assertIn("below", r.stderr)


class FiguresMode(TempFiles):
    FIG = "header\nrow 1  2.00x\nrow 2  1.50x\n"

    def test_identical_modulo_timing(self):
        a = self.write("a.txt", self.FIG + "[timing] total: 3.21 s\n")
        b = self.write("b.txt", self.FIG + "[timing] total: 9.87 s\n")
        r = run_tool("--figures", a, b)
        self.assertEqual(r.returncode, 0)
        self.assertIn("figures identical", r.stdout)

    def test_changed_cell_fails_with_diff(self):
        a = self.write("a.txt", self.FIG)
        b = self.write("b.txt", self.FIG.replace("1.50x", "1.51x"))
        r = run_tool("--figures", a, b)
        self.assertEqual(r.returncode, 1)
        self.assertIn("-row 2  1.50x", r.stdout)
        self.assertIn("+row 2  1.51x", r.stdout)
        self.assertIn("FAIL", r.stderr)

    def test_empty_figure_exits_2(self):
        a = self.write("a.txt", "[timing] only a footer\n")
        b = self.write("b.txt", self.FIG)
        r = run_tool("--figures", a, b)
        self.assertEqual(r.returncode, 2)
        self.assertIn("no figure output", r.stderr)


class TailMode(TempFiles):
    def test_gate_passes_with_unit_suffix(self):
        # total p99 is 5us = 5e6 ps; a 60us bound passes.
        f = self.write("s.json", serve_json([(1e6, 0, 5_000_000)]))
        r = run_tool("--tail", f, "--gate", "total.p99<=60us",
                     "--gate", "dropped<=0")
        self.assertEqual(r.returncode, 0)
        self.assertIn("ok: total.p99_ps", r.stdout)
        self.assertIn("ok: dropped", r.stdout)

    def test_gate_fails_above_bound(self):
        f = self.write("s.json", serve_json([(1e6, 0, 70_000_000)]))
        r = run_tool("--tail", f, "--gate", "total.p99<=60us")
        self.assertEqual(r.returncode, 1)
        self.assertIn("exceeds", r.stderr)

    def test_units_are_converted(self):
        # 5e6 ps == 5000 ns == 5 us == 0.005 ms; all four spellings of
        # the same bound must agree.
        f = self.write("s.json", serve_json([(1e6, 0, 5_000_000)]))
        for bound in ("5000000ps", "5000000", "5000ns", "5us", "0.005ms"):
            r = run_tool("--tail", f, "--gate", f"total.p99<={bound}")
            self.assertEqual(r.returncode, 0, msg=bound)
        r = run_tool("--tail", f, "--gate", "total.p99<=4999999ps")
        self.assertEqual(r.returncode, 1)

    def test_sweep_index_selects_point(self):
        f = self.write("s.json", serve_json([(1e6, 0, 5_000_000),
                                             (4e6, 10, 80_000_000)]))
        r = run_tool("--tail", f, "--gate", "total.p99<=60us")
        self.assertEqual(r.returncode, 0)  # default: point 0
        r = run_tool("--tail", f, "--sweep-index", "1",
                     "--gate", "total.p99<=60us")
        self.assertEqual(r.returncode, 1)
        r = run_tool("--tail", f, "--sweep-index", "2",
                     "--gate", "total.p99<=60us")
        self.assertEqual(r.returncode, 2)
        self.assertIn("out of range", r.stderr)

    def test_counter_gates(self):
        f = self.write("s.json", serve_json([(4e6, 10, 5_000_000)]))
        r = run_tool("--tail", f, "--gate", "dropped<=0")
        self.assertEqual(r.returncode, 1)
        r = run_tool("--tail", f, "--gate", "dropped<=10",
                     "--gate", "completed>=86")
        self.assertEqual(r.returncode, 0)
        r = run_tool("--tail", f, "--gate", "completed>=96")
        self.assertEqual(r.returncode, 1)

    def test_malformed_gate_exits_2(self):
        f = self.write("s.json", serve_json([(1e6, 0, 5_000_000)]))
        for bad in ("bogus", "total.p98<=1us", "total.p99<=fast",
                    "dropped<=many"):
            r = run_tool("--tail", f, "--gate", bad)
            self.assertEqual(r.returncode, 2, msg=bad)

    def test_unknown_phase_fails(self):
        f = self.write("s.json", serve_json([(1e6, 0, 5_000_000)]))
        r = run_tool("--tail", f, "--gate", "warmup.p99<=1us")
        self.assertEqual(r.returncode, 1)
        self.assertIn("not", r.stderr)

    def test_wrong_schema_exits_2(self):
        f = self.write("s.json", bench_json([("a", 1.0)]))
        r = run_tool("--tail", f, "--gate", "total.p99<=60us")
        self.assertEqual(r.returncode, 2)
        self.assertIn("ansmet-serve-v1", r.stderr)

    def test_empty_sweep_exits_2(self):
        f = self.write("s.json",
                       json.dumps({"schema": "ansmet-serve-v1",
                                   "sweep": []}))
        r = run_tool("--tail", f)
        self.assertEqual(r.returncode, 2)
        self.assertIn("sweep is empty", r.stderr)

    def test_no_gates_reports_only(self):
        f = self.write("s.json", serve_json([(1e6, 0, 5_000_000)]))
        r = run_tool("--tail", f)
        self.assertEqual(r.returncode, 0)
        self.assertIn("offered qps", r.stdout)

    def test_tail_excludes_other_modes(self):
        f = self.write("s.json", serve_json([(1e6, 0, 5_000_000)]))
        r = run_tool("--tail", "--speedup", f)
        self.assertEqual(r.returncode, 2)
        self.assertIn("mutually exclusive", r.stderr)


if __name__ == "__main__":
    unittest.main()
