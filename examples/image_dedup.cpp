/**
 * @file
 * Near-duplicate image detection with an IVF index.
 *
 * A photo service wants to flag uploads that are near-duplicates of
 * existing images, using SIFT-like local descriptors under L2. This
 * exercises the cluster-based index path (the paper's Figure 1 uses
 * IVF alongside HNSW) and shows the trace/timing pipeline on IVF,
 * including how many cluster-scan comparisons early termination can
 * reject.
 *
 * Run: ./build/examples/image_dedup
 */

#include <cstdio>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/ivf.h"
#include "core/system.h"
#include "core/trace.h"
#include "et/profile.h"

int
main()
{
    using namespace ansmet;

    std::printf("== near-duplicate detection (IVF, L2) ==\n\n");

    const auto ds = anns::makeDataset(anns::DatasetId::kSift, 6000, 32, 9);
    const anns::IvfIndex index(*ds.base, ds.metric(), anns::IvfParams{});
    std::printf("indexed %zu descriptors into %u clusters\n",
                ds.base->size(), index.numClusters());

    // Choose nprobe for >=90% recall (dedup wants high confidence).
    const auto gt = anns::bruteForceAll(ds.metric(), ds.queries,
                                        *ds.base, 10);
    unsigned nprobe = 1;
    double recall = 0.0;
    for (; nprobe <= index.numClusters(); nprobe *= 2) {
        double total = 0.0;
        for (std::size_t q = 0; q < ds.queries.size(); ++q) {
            total += anns::recallAtK(
                index.search(ds.queries[q].data(), 10, nprobe), gt[q], 10);
        }
        recall = total / static_cast<double>(ds.queries.size());
        if (recall >= 0.90)
            break;
    }
    std::printf("nprobe=%u -> recall@10 = %.3f\n\n", nprobe, recall);

    // Flag near-duplicates: anything whose nearest neighbor is within
    // a small distance budget of the query upload.
    std::size_t flagged = 0;
    for (const auto &q : ds.queries) {
        const auto nn = index.search(q.data(), 1, nprobe);
        if (!nn.empty()) {
            const double d =
                anns::distance(ds.metric(), q.data(), *ds.base, nn[0]);
            // Budget: tighter than the typical 10-NN distance.
            if (d < gt[0].back().dist * 0.5)
                ++flagged;
        }
    }
    std::printf("flagged %zu of %zu uploads as near-duplicates\n\n",
                flagged, ds.queries.size());

    // Timing on the ANSMET hardware: trace the IVF queries and replay.
    et::ProfileConfig pcfg;
    const auto prof = et::buildProfile(*ds.base, ds.metric(), pcfg);
    std::vector<core::QueryTrace> traces;
    for (const auto &q : ds.queries)
        traces.push_back(core::traceIvfQuery(index, q, 10, nprobe));

    std::size_t comps = 0, accepted = 0;
    for (const auto &t : traces) {
        comps += t.numComparisons();
        accepted += t.numAccepted();
    }
    std::printf("IVF scans %.0f vectors per query; %.1f%% are rejected\n",
                static_cast<double>(comps) /
                    static_cast<double>(traces.size()),
                100.0 * (1.0 - static_cast<double>(accepted) /
                                   static_cast<double>(comps)));

    for (const auto d : {core::Design::kCpuBase, core::Design::kNdpBase,
                         core::Design::kNdpEtOpt}) {
        core::SystemConfig cfg;
        cfg.design = d;
        core::scaleCachesToDataset(
            cfg, ds.base->size() * ds.base->vectorBytes());
        core::SystemModel model(cfg, *ds.base, ds.metric(), &prof);
        const auto rs = model.run(traces);
        const auto t = rs.totals();
        std::printf("  %-10s QPS %8.0f   early-terminated %5.1f%%\n",
                    core::designName(d), rs.qps(),
                    100.0 * static_cast<double>(t.terminated) /
                        static_cast<double>(t.comparisons));
    }

    std::printf("\nCluster scans reject most candidates, which is exactly\n"
                "where hybrid early termination saves fetches.\n");
    return 0;
}
