/**
 * @file
 * Semantic search (RAG-style retrieval) example.
 *
 * Retrieval-augmented generation retrieves passages by inner-product
 * similarity of normalized embeddings — the GloVe/Txt2Img setting of
 * the paper. This example shows the key algorithmic point of ANSMET
 * for IP metrics: partial-*dimension* early termination (prior work)
 * has no sound bound, because unfetched dimensions can contribute
 * arbitrarily negative values; partial-*bit* prefixes bound every
 * dimension from the first fetch onward and restore the savings.
 *
 * Run: ./build/examples/semantic_search
 */

#include <cstdio>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/hnsw.h"
#include "core/experiment.h"
#include "et/fetchsim.h"

int
main()
{
    using namespace ansmet;

    std::printf("== semantic passage retrieval (inner product) ==\n\n");

    core::ExperimentConfig cfg;
    cfg.dataset = anns::DatasetId::kGlove; // normalized embeddings, IP
    cfg.numVectors = 4000;
    cfg.numQueries = 24;
    cfg.hnsw.efConstruction = 100;
    const core::ExperimentContext ctx(cfg);
    const auto &ds = ctx.dataset();

    std::printf("corpus: %zu passage embeddings x %u dims, recall@10 = "
                "%.3f at efSearch=%zu\n\n",
                ds.base->size(), ds.dims(), ctx.recall(), ctx.efSearch());

    // A single retrieval, end to end.
    const auto &query = ds.queries[0];
    const auto hits = ctx.index().search(query.data(), 5, ctx.efSearch());
    std::printf("top-5 passages for query 0: ");
    for (const VectorId id : hits)
        std::printf("#%u ", id);
    std::printf("\n\n");

    // Why bit-level ET matters under IP: compare mean fetched lines at
    // a converged threshold for the three relevant schemes.
    const auto gt =
        anns::bruteForceKnn(ds.metric(), query.data(), *ds.base, 10);
    const double threshold = gt.back().dist;

    std::printf("mean 64B fetches per comparison (query 0, converged "
                "threshold):\n");
    for (const auto scheme :
         {et::EtScheme::kNone, et::EtScheme::kDimOnly,
          et::EtScheme::kOpt}) {
        const et::FetchSimulator sim(*ds.base, ds.metric(), scheme,
                                     &ctx.profile());
        double lines = 0;
        const unsigned probe = 1000;
        for (VectorId v = 0; v < probe; ++v)
            lines += sim.simulate(query.data(), v, threshold).totalLines();
        std::printf("  %-8s %.2f lines\n", et::schemeName(scheme),
                    lines / probe);
    }

    std::printf("\nfull-system effect (QPS):\n");
    for (const auto d :
         {core::Design::kNdpBase, core::Design::kNdpDimEt,
          core::Design::kNdpEtOpt}) {
        std::printf("  %-10s %.0f\n", core::designName(d),
                    ctx.runDesign(d).qps());
    }

    std::printf("\nDimET == Base on IP data (no stable bound, Section 7.1);"
                "\nhybrid partial-bit ET recovers the savings.\n");
    return 0;
}
