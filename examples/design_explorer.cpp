/**
 * @file
 * Hardware design-space explorer.
 *
 * Given a workload shape (dataset profile + recall target), sweep the
 * two main ANSMET provisioning knobs — number of NDP units and hybrid
 * partitioning sub-vector size — and print a recommendation. This is
 * the kind of study an architect would run before taping out a DIMM
 * buffer chip, built entirely on the public library API.
 *
 * Run: ./build/examples/design_explorer [dataset]
 *   dataset in {sift, bigann, spacev, deep, glove, txt2img, gist}
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.h"

namespace {

ansmet::anns::DatasetId
parseDataset(int argc, char **argv)
{
    using ansmet::anns::DatasetId;
    if (argc < 2)
        return DatasetId::kDeep;
    const std::string s = argv[1];
    for (const auto id : ansmet::anns::allDatasets()) {
        std::string name = ansmet::anns::datasetSpec(id).name;
        for (auto &c : name)
            c = static_cast<char>(std::tolower(c));
        if (s == name)
            return id;
    }
    std::fprintf(stderr, "unknown dataset '%s', using deep\n", argv[1]);
    return DatasetId::kDeep;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ansmet;

    const auto id = parseDataset(argc, argv);

    core::ExperimentConfig cfg;
    cfg.dataset = id;
    cfg.numVectors = id == anns::DatasetId::kGist ? 3000 : 6000;
    cfg.numQueries = 24;
    cfg.hnsw.efConstruction = 100;
    const core::ExperimentContext ctx(cfg);

    std::printf("== ANSMET design explorer: %s ==\n",
                anns::datasetSpec(id).name.c_str());
    std::printf("workload: %zu vectors x %u dims (%s), recall@%zu = %.3f\n\n",
                ctx.dataset().base->size(), ctx.dataset().dims(),
                anns::scalarName(ctx.dataset().base->type()),
                ctx.config().k, ctx.recall());

    // Sweep 1: NDP unit count (rank-level parallelism vs cost).
    std::printf("NDP unit scaling (NDP-ETOpt, hybrid 1kB):\n");
    std::printf("  %6s %10s %14s\n", "units", "QPS", "QPS/unit");
    double best_qps = 0.0;
    unsigned best_units = 8;
    for (const unsigned units : {8u, 16u, 32u, 64u}) {
        core::SystemConfig sc = ctx.systemConfig(core::Design::kNdpEtOpt);
        sc.ndpUnits = units;
        const double qps = ctx.runDesign(sc).qps();
        std::printf("  %6u %10.0f %14.1f\n", units, qps, qps / units);
        if (qps > best_qps * 1.10) { // require >10% gain to scale up
            best_qps = qps;
            best_units = units;
        }
    }

    // Sweep 2: sub-vector size at the chosen unit count.
    std::printf("\npartitioning sweep at %u units:\n", best_units);
    std::printf("  %12s %10s %12s\n", "sub-vector", "QPS", "imbalance");
    unsigned best_s = 1024;
    double best_s_qps = 0.0;
    for (const unsigned s : {64u, 256u, 512u, 1024u, 2048u, ~0u}) {
        core::SystemConfig sc = ctx.systemConfig(core::Design::kNdpEtOpt);
        sc.ndpUnits = best_units;
        sc.subVectorBytes = s;
        const auto rs = ctx.runDesign(sc);
        std::printf("  %12s %10.0f %12.2f\n",
                    s == ~0u ? "horizontal"
                             : (std::to_string(s) + "B").c_str(),
                    rs.qps(), rs.loadImbalance);
        if (rs.qps() > best_s_qps) {
            best_s_qps = rs.qps();
            best_s = s;
        }
    }

    const double cpu = ctx.runDesign(core::Design::kCpuBase).qps();
    std::printf("\nrecommendation: %u NDP units, %s sub-vectors "
                "-> %.2fx over the CPU baseline\n",
                best_units,
                best_s == ~0u ? "whole-vector (horizontal)"
                              : (std::to_string(best_s) + " B").c_str(),
                best_s_qps / cpu);
    return 0;
}
