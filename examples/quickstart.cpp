/**
 * @file
 * Quickstart: the smallest end-to-end ANSMET session.
 *
 * 1. Generate a SIFT-like dataset and build an HNSW index.
 * 2. Run approximate kNN queries and check recall against brute force.
 * 3. Run the offline ET preprocessing (threshold sampling, common
 *    prefix, dual-granularity layout search).
 * 4. Replay the same queries through the CPU baseline and the full
 *    ANSMET system (NDP + hybrid early termination) and compare.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/hnsw.h"
#include "core/experiment.h"

int
main()
{
    using namespace ansmet;

    std::printf("== ANSMET quickstart ==\n\n");

    // 1-3. ExperimentContext bundles dataset + index + preprocessing.
    core::ExperimentConfig cfg;
    cfg.dataset = anns::DatasetId::kSift;
    cfg.numVectors = 4000;
    cfg.numQueries = 24;
    cfg.k = 10;
    cfg.hnsw.efConstruction = 100;
    const core::ExperimentContext ctx(cfg);

    std::printf("dataset: %s, %zu vectors x %u dims (%s), metric %s\n",
                ctx.dataset().spec.name.c_str(), ctx.dataset().base->size(),
                ctx.dataset().dims(),
                anns::scalarName(ctx.dataset().base->type()),
                anns::metricName(ctx.dataset().metric()));
    std::printf("HNSW: efSearch tuned to %zu -> recall@10 = %.3f\n",
                ctx.efSearch(), ctx.recall());

    const auto &prof = ctx.profile();
    std::printf("ET preprocessing: threshold %.1f, common prefix %u bits,"
                " dual fetch (nC=%u, TC=%u, nF=%u)\n\n",
                prof.threshold, prof.commonPrefix.length,
                prof.dualWithPrefix.nc, prof.dualWithPrefix.tc,
                prof.dualWithPrefix.nf);

    // 4. Timing comparison.
    std::printf("%-12s %10s %12s %10s\n", "design", "QPS", "64B fetches",
                "early-term");
    for (const auto d : {core::Design::kCpuBase, core::Design::kNdpBase,
                         core::Design::kNdpEtOpt}) {
        const core::RunStats rs = ctx.runDesign(d);
        const auto t = rs.totals();
        std::printf("%-12s %10.0f %12llu %9.1f%%\n", core::designName(d),
                    rs.qps(),
                    static_cast<unsigned long long>(
                        t.linesEffectual + t.linesIneffectual +
                        t.backupLines),
                    100.0 * static_cast<double>(t.terminated) /
                        static_cast<double>(t.comparisons));
    }

    std::printf("\nEarly termination never changes results: the search\n"
                "path is identical across designs (lossless bounds), so\n"
                "recall stays %.3f everywhere.\n",
                ctx.recall());
    return 0;
}
